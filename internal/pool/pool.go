// Package pool provides the persistent worker pool that both the
// shared-memory federation (internal/parsim) and the distributed
// worker's intra-node execution pool (internal/distsim) run lookahead
// windows on.
//
// The design is the one proved out by parsim and motivated by the
// paper's engine guidance: goroutines are started once and reused for
// every window, because rebuilding the execution contexts per window —
// the naive "fork workers for each window" translation — costs a pool
// construction and teardown every lookahead interval, and with fine
// lookaheads a simulation executes thousands of windows per second, so
// the churn dominates. Per window the coordinator publishes any shared
// state (e.g. the window end), releases one token per worker through a
// shared channel, workers claim items off an atomic cursor, and a
// counting barrier (one done-token per worker) closes the window.
//
// Memory ordering: each start-token send happens-before the matching
// receive, so anything the caller writes before Run is visible to every
// worker; each done-token send happens-before the matching receive, so
// anything a worker writes during the window is visible to the caller
// after Run returns. Callers therefore need no extra locking for state
// that is only touched outside windows or by a single worker within
// one.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool runs batches of independent items over a fixed set of
// persistent workers. A Pool with one worker executes Run inline on
// the caller's goroutine — no goroutines, channels, or atomics are
// touched — so a single-threaded caller pays nothing for the
// abstraction.
type Pool struct {
	workers int
	body    func(worker, item int)
	observe func(worker int, waitStart, busyStart, busyEnd int64)

	items  int           // published before tokens are released
	cursor atomic.Int64  // next item index to claim
	start  chan struct{} // one token per worker per Run; closed to stop
	done   chan struct{} // one token per worker per Run
	wg     sync.WaitGroup
	closed bool

	// Panic propagation: a body panic on a pool goroutine would kill
	// the whole process, whereas the same panic under inline execution
	// unwinds through Run to the caller. The first panicking worker
	// parks its value here (CAS elects the winner), the claim loops
	// drain without running further items, and Run re-panics on the
	// caller's goroutine after the barrier — same observable contract
	// as inline mode.
	aborted  atomic.Bool
	panicVal any
}

// New creates a pool of the given size. body is invoked as
// body(worker, item) for every item of every Run; for workers > 1 it
// must be safe to call concurrently for distinct items. Worker
// goroutines are started lazily on the first Run that needs them.
func New(workers int, body func(worker, item int)) *Pool {
	if workers < 1 || body == nil {
		panic(fmt.Sprintf("pool: New(workers=%d, body=%p)", workers, body))
	}
	return &Pool{workers: workers, body: body}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// SetObserve attaches a per-worker, per-Run phase hook:
// observe(worker, waitStart, busyStart, busyEnd), all obs.Now
// timestamps. The wait phase [waitStart, busyStart) is the time the
// worker spent blocked between reporting one window's done-token and
// receiving the next start-token — the synchronization barrier cost.
// The busy phase [busyStart, busyEnd) covers claiming and running
// items. In inline mode (one worker) there is no barrier, and the hook
// is called with waitStart == busyStart. With no hook attached the
// pool reads no clocks at all. Must be called before the first Run.
func (p *Pool) SetObserve(fn func(worker int, waitStart, busyStart, busyEnd int64)) {
	if p.start != nil {
		panic("pool: SetObserve after Run")
	}
	p.observe = fn
}

// Run executes body for every item in [0, items) and returns when all
// are done. Items are claimed dynamically, so a worker stuck on an
// expensive item does not hold idle workers hostage. The item count
// may differ between Runs (e.g. after an LP migration). Run must not
// be called concurrently with itself or Close.
func (p *Pool) Run(items int) {
	if p.closed {
		panic("pool: Run after Close")
	}
	if p.workers == 1 {
		if p.observe == nil {
			for i := 0; i < items; i++ {
				p.body(0, i)
			}
			return
		}
		busyStart := obs.Now()
		for i := 0; i < items; i++ {
			p.body(0, i)
		}
		p.observe(0, busyStart, busyStart, obs.Now())
		return
	}
	if p.start == nil {
		p.start = make(chan struct{})
		p.done = make(chan struct{})
		for w := 0; w < p.workers; w++ {
			w := w
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.workerLoop(w)
			}()
		}
	}
	p.items = items
	p.cursor.Store(0)
	// Release exactly one token per worker; each send happens-before
	// the matching receive, publishing items, the reset cursor, and any
	// caller state written before Run.
	for w := 0; w < p.workers; w++ {
		p.start <- struct{}{}
	}
	// Counting barrier: the batch is over when every worker reports.
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
	if p.aborted.Load() {
		// Re-raise the body panic on the caller's goroutine, exactly
		// where inline execution would have raised it. The flag resets
		// so a caller that recovers can keep using the pool.
		r := p.panicVal
		p.panicVal = nil
		p.aborted.Store(false)
		panic(r)
	}
}

// runItem executes one body call, converting a panic into the abort
// flag Run re-raises. Returning normally (not re-panicking here) keeps
// the worker alive to reach the barrier, so Run never deadlocks.
func (p *Pool) runItem(w, i int) {
	defer func() {
		if r := recover(); r != nil {
			if p.aborted.CompareAndSwap(false, true) {
				// Only Run reads panicVal, after the done barrier — the
				// done-token send orders this write before that read.
				p.panicVal = r
			}
		}
	}()
	p.body(w, i)
}

// workerLoop is the body of one persistent worker: per Run it claims
// items off the shared cursor until none remain, then reports to the
// barrier. A closed start channel is the stop signal.
func (p *Pool) workerLoop(w int) {
	var waitStart int64
	if p.observe != nil {
		waitStart = obs.Now()
	}
	for range p.start {
		var busyStart int64
		if p.observe != nil {
			busyStart = obs.Now()
		}
		for {
			i := int(p.cursor.Add(1)) - 1
			if i >= p.items || p.aborted.Load() {
				break
			}
			p.runItem(w, i)
		}
		if p.observe != nil {
			p.observe(w, waitStart, busyStart, obs.Now())
		}
		p.done <- struct{}{}
		if p.observe != nil {
			waitStart = obs.Now()
		}
	}
}

// Close stops and joins the worker goroutines. It is idempotent and
// safe on a pool whose workers were never started. The pool must not
// be used again after Close.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.start != nil {
		close(p.start) // stop signal: workers drain and exit
		p.wg.Wait()
		p.start, p.done = nil, nil
	}
}
