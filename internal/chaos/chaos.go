// Package chaos is a deterministic network-fault injector for
// validating the distributed simulation transport.
//
// The paper's taxonomy lists "support for validation" among the design
// requirements a credible simulator must meet; for a *distributed*
// engine, validation has to cover the network itself, because the wire
// is part of the state machine. This package wraps net.Conn and
// net.Listener with seed-driven fault injection — message drop, fixed
// and jittered delay, duplication, reordering, byte corruption,
// connection reset, timed partitions — where every fault decision is
// drawn from an rng.Source stream rather than from wall-clock
// randomness. Two runs with the same seed therefore inject the same
// faults at the same message indices, so a chaos failure reproduces
// under a debugger, and a chaos test can assert the strongest property
// there is: the simulation's final state is bit-identical to the
// fault-free run.
//
// Fault model granularity is the message, not the byte: the transport
// layer above frames each protocol message as a single Write call, and
// the injector treats each Write as one unit to drop, delay, corrupt,
// duplicate, or reorder. That deliberately models a datagram-like
// adversary on top of a stream — the strongest faults a framed
// protocol with integrity checks has to survive.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// Config selects fault classes and their intensities. Probabilities
// are per message in [0, 1]; zero disables the class entirely (and
// burns no random draws, so adding a fault class to a config does not
// reshuffle the decisions of the others... see Injector for the draw
// discipline).
type Config struct {
	// Seed drives every fault decision; equal seeds inject equal
	// faults at equal message indices.
	Seed uint64

	Drop    float64 // P(message silently discarded)
	Dup     float64 // P(message written twice)
	Reorder float64 // P(message held back and swapped with its successor)
	Corrupt float64 // P(one byte of the message flipped)
	Reset   float64 // P(connection forcibly closed at this message)

	// Delay and Jitter add a fixed plus uniformly drawn pause before
	// each message is written (simulated latency).
	Delay  time.Duration
	Jitter time.Duration

	// ResetAt forces a connection reset at these global message
	// indices (0-based, counted across all wrapped connections),
	// exactly once each — the deterministic way to script "the network
	// breaks during window 40".
	ResetAt []uint64

	// PartitionStart/PartitionDur blackhole every write (messages
	// vanish, connections stay up) during the wall-clock window
	// [start, start+dur) measured from the injector's creation. This
	// models a transient partition the protocol must ride out with
	// timeouts and reconnection.
	PartitionStart time.Duration
	PartitionDur   time.Duration

	// KillAt fires OnKill exactly once, at the write of global message
	// index KillAt — the deterministic way to script "the coordinator
	// dies during window 40". The message itself is still delivered;
	// the hook runs under the injector lock, so it must not write
	// through the injector (crash-restart tests use it to make the
	// coordinator exit). Zero disables (index 0 is unreachable; the
	// handshake always precedes any scriptable crash site).
	KillAt uint64
	OnKill func()
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	Messages   uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	Resets     uint64
	Blackholed uint64
	Delayed    uint64 // messages that slept (fixed delay or jitter)
}

// Injector applies a Config to connections. All wrapped connections
// share one message counter and one random stream, guarded by a mutex:
// the interleaving of messages across connections may vary between
// runs (goroutine scheduling), but each message's fault decision
// depends only on the draw sequence, and the per-class gating keeps
// disabled classes from consuming draws.
//
// Draw discipline: for message n the injector draws, in fixed order
// and only for classes with nonzero intensity — reset, drop, dup,
// reorder, corrupt (plus a position draw when corrupting), jitter.
// This order is part of the package contract; changing it changes
// which faults a given seed produces.
type Injector struct {
	cfg   Config
	start time.Time

	mu     sync.Mutex
	src    *rng.Source
	msgs   uint64
	fired  map[uint64]bool // ResetAt indices already consumed
	killed bool            // KillAt already consumed
	stats  Stats
}

// New builds an injector for the given fault plan.
func New(cfg Config) *Injector {
	in := &Injector{
		cfg:   cfg,
		start: time.Now(),
		src:   rng.New(cfg.Seed).Derive("chaos"),
	}
	if len(cfg.ResetAt) > 0 {
		in.fired = make(map[uint64]bool, len(cfg.ResetAt))
	}
	return in
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// verdict is one message's fate, decided under the injector lock and
// executed outside it.
type verdict struct {
	reset   bool
	drop    bool // includes partition blackholing
	dup     bool
	reorder bool
	corrupt int           // byte index to flip, -1 for none
	sleep   time.Duration // fixed delay + jitter
}

// decide consumes the draws for one message of the given length.
func (in *Injector) decide(n int) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.msgs
	in.msgs++
	in.stats.Messages++

	v := verdict{corrupt: -1}
	if in.cfg.OnKill != nil && in.cfg.KillAt > 0 && idx == in.cfg.KillAt && !in.killed {
		in.killed = true
		in.cfg.OnKill()
	}
	for _, at := range in.cfg.ResetAt {
		if at == idx && !in.fired[at] {
			in.fired[at] = true
			v.reset = true
		}
	}
	if in.cfg.Reset > 0 && in.src.Bernoulli(in.cfg.Reset) {
		v.reset = true
	}
	if in.cfg.Drop > 0 && in.src.Bernoulli(in.cfg.Drop) {
		v.drop = true
	}
	if in.cfg.Dup > 0 && in.src.Bernoulli(in.cfg.Dup) {
		v.dup = true
	}
	if in.cfg.Reorder > 0 && in.src.Bernoulli(in.cfg.Reorder) {
		v.reorder = true
	}
	if in.cfg.Corrupt > 0 && in.src.Bernoulli(in.cfg.Corrupt) && n > 0 {
		v.corrupt = in.src.Intn(n)
	}
	if in.cfg.Jitter > 0 {
		v.sleep = time.Duration(in.src.Float64() * float64(in.cfg.Jitter))
	}
	v.sleep += in.cfg.Delay

	// The partition is wall-clock scripted, not drawn, so it burns no
	// randomness; it overrides everything except resets.
	if in.cfg.PartitionDur > 0 {
		since := time.Since(in.start)
		if since >= in.cfg.PartitionStart && since < in.cfg.PartitionStart+in.cfg.PartitionDur {
			v.drop = true
			in.stats.Blackholed++
		}
	}

	switch {
	case v.reset:
		in.stats.Resets++
	case v.drop:
		in.stats.Dropped++
	default:
		if v.dup {
			in.stats.Duplicated++
		}
		if v.reorder {
			in.stats.Reordered++
		}
		if v.corrupt >= 0 {
			in.stats.Corrupted++
		}
	}
	if v.sleep > 0 {
		in.stats.Delayed++
	}
	return v
}

// Conn wraps a connection with fault injection on the write side. One
// Write call is one message. The read side passes through untouched —
// wrap both endpoints (or both directions) to attack both flows.
func (in *Injector) Conn(c net.Conn) net.Conn {
	return &conn{Conn: c, in: in}
}

// Listener wraps a listener so every accepted connection is
// fault-injected.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// conn applies the injector's verdicts to writes. held buffers a
// reordered message until the next write (or Close) flushes it.
type conn struct {
	net.Conn
	in *Injector

	wmu  sync.Mutex
	held []byte
}

// errReset is what a chaos-reset write returns after closing the
// connection.
var errReset = fmt.Errorf("chaos: connection reset by injector")

func (c *conn) Write(p []byte) (int, error) {
	v := c.in.decide(len(p))
	if v.sleep > 0 {
		time.Sleep(v.sleep)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if v.reset {
		_ = c.Conn.Close()
		return 0, errReset
	}
	if v.drop {
		// Silently vanish — the caller believes the write succeeded,
		// exactly like a lost datagram.
		return len(p), nil
	}
	buf := append([]byte(nil), p...)
	if v.corrupt >= 0 && v.corrupt < len(buf) {
		buf[v.corrupt] ^= 0xff
	}
	if v.reorder {
		// Hold this message; it goes out after the next one.
		if c.held != nil {
			// Already holding one: emit the older first to bound the
			// buffer at a single message.
			if _, err := c.Conn.Write(c.held); err != nil {
				return 0, err
			}
		}
		c.held = buf
		return len(p), nil
	}
	if _, err := c.Conn.Write(buf); err != nil {
		return 0, err
	}
	if c.held != nil {
		held := c.held
		c.held = nil
		if _, err := c.Conn.Write(held); err != nil {
			return 0, err
		}
	}
	if v.dup {
		if _, err := c.Conn.Write(buf); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (c *conn) Close() error {
	c.wmu.Lock()
	held := c.held
	c.held = nil
	c.wmu.Unlock()
	if held != nil {
		_, _ = c.Conn.Write(held)
	}
	return c.Conn.Close()
}
