package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConn returns a connected pair with the client side wrapped by
// the injector, plus a cleanup.
func pipeConn(t *testing.T, in *Injector) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return in.Conn(a), b
}

// readN reads exactly n bytes from c with a deadline.
func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read %d bytes: %v", n, err)
	}
	return buf
}

// faultPlan replays the decision sequence an injector makes for a
// message stream, for determinism comparison.
func faultPlan(cfg Config, msgs, msgLen int) []verdict {
	in := New(cfg)
	out := make([]verdict, msgs)
	for i := range out {
		out[i] = in.decide(msgLen)
	}
	return out
}

func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 99, Drop: 0.1, Dup: 0.05, Reorder: 0.05, Corrupt: 0.05, Reset: 0.01}
	a := faultPlan(cfg, 500, 64)
	b := faultPlan(cfg, 500, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d: %+v vs %+v — same seed, different faults", i, a[i], b[i])
		}
	}
	// ...and a different seed must actually shuffle them.
	cfg.Seed = 100
	c := faultPlan(cfg, 500, 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault plans")
	}
}

func TestDisabledClassesBurnNoDraws(t *testing.T) {
	// With only Drop enabled, enabling Dup later must not change which
	// messages drop — per-class gating isolates the draw streams... it
	// does not (single stream), but disabled classes burn nothing, so
	// a drop-only plan is stable no matter what other classes WOULD
	// have drawn. Pin the weaker, true property: drop-only plans are a
	// pure function of (seed, message index).
	drops := func(cfg Config) []bool {
		in := New(cfg)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.decide(32).drop
		}
		return out
	}
	a := drops(Config{Seed: 7, Drop: 0.2})
	b := drops(Config{Seed: 7, Drop: 0.2, Delay: time.Millisecond})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d: fixed delay changed the drop plan", i)
		}
	}
}

func TestDropAndPassThrough(t *testing.T) {
	// Drop=1: every write vanishes but reports success.
	in := New(Config{Seed: 1, Drop: 1})
	cw, _ := pipeConn(t, in)
	n, err := cw.Write([]byte("gone"))
	if n != 4 || err != nil {
		t.Fatalf("dropped write returned (%d, %v), want (4, nil)", n, err)
	}

	// Drop=0: bytes arrive intact.
	in2 := New(Config{Seed: 1})
	cw2, cr2 := pipeConn(t, in2)
	go func() { _, _ = cw2.Write([]byte("hello")) }()
	if got := readN(t, cr2, 5); string(got) != "hello" {
		t.Fatalf("clean write arrived as %q", got)
	}
	if s := in2.Stats(); s.Messages != 1 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	in := New(Config{Seed: 3, Corrupt: 1})
	cw, cr := pipeConn(t, in)
	msg := []byte("abcdefgh")
	go func() { _, _ = cw.Write(msg) }()
	got := readN(t, cr, len(msg))
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
			if got[i] != msg[i]^0xff {
				t.Fatalf("byte %d corrupted to %02x, want %02x", i, got[i], msg[i]^0xff)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if string(msg) != "abcdefgh" {
		t.Fatal("caller's buffer was mutated")
	}
}

func TestDuplicateWritesTwice(t *testing.T) {
	in := New(Config{Seed: 4, Dup: 1})
	cw, cr := pipeConn(t, in)
	go func() { _, _ = cw.Write([]byte("xy")) }()
	if got := readN(t, cr, 4); string(got) != "xyxy" {
		t.Fatalf("duplicated write arrived as %q, want xyxy", got)
	}
}

func TestReorderSwapsAdjacentMessages(t *testing.T) {
	// Reorder=1 makes every message held; each next write flushes the
	// previous hold first, so AB arrives as... A held, B written → the
	// hold rule emits the older when a second hold arrives. Script it
	// precisely: with Reorder=1, write A (held), write B (B replaces:
	// A flushed first, B held), Close flushes B → wire order A, B??
	// No: on B's write the injector holds B and flushes A because only
	// one message may be held. The swap shows with three writes:
	// A(held) B(A out, B held) C(B out, C held) close(C out) → ABC.
	// A genuine swap needs Reorder to hit one message only, so script
	// via seed: find a seed where exactly message 0 reorders.
	cfg := Config{Seed: 0, Reorder: 0.5}
	var seed uint64
	for s := uint64(0); s < 1000; s++ {
		cfg.Seed = s
		plan := faultPlan(cfg, 2, 1)
		if plan[0].reorder && !plan[1].reorder {
			seed = s
			break
		}
	}
	cfg.Seed = seed
	in := New(cfg)
	cw, cr := pipeConn(t, in)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = cw.Write([]byte("A")) // held
		_, _ = cw.Write([]byte("B")) // passes, then flushes A
	}()
	got := readN(t, cr, 2)
	<-done
	if !bytes.Equal(got, []byte("BA")) {
		t.Fatalf("wire order %q, want BA", got)
	}
}

func TestResetAtFiresExactlyOnce(t *testing.T) {
	in := New(Config{Seed: 5, ResetAt: []uint64{1}})
	cw, cr := pipeConn(t, in)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := cr.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := cw.Write([]byte("ok")); err != nil { // message 0
		t.Fatalf("message 0: %v", err)
	}
	if _, err := cw.Write([]byte("boom")); err == nil { // message 1
		t.Fatal("message 1 survived a scripted reset")
	}
	// A second connection through the same injector keeps working:
	// index 1 already fired.
	cw2, cr2 := pipeConn(t, in)
	go func() { _, _ = cw2.Write([]byte("on")) }()
	if got := readN(t, cr2, 2); string(got) != "on" {
		t.Fatalf("post-reset message arrived as %q", got)
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("resets = %d, want 1", s.Resets)
	}
}

func TestPartitionBlackholesWindow(t *testing.T) {
	// Partition active from t=0 for 100ms: writes inside vanish,
	// writes after pass.
	in := New(Config{Seed: 6, PartitionDur: 100 * time.Millisecond})
	cw, cr := pipeConn(t, in)
	if n, err := cw.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("partitioned write returned (%d, %v)", n, err)
	}
	time.Sleep(120 * time.Millisecond)
	go func() { _, _ = cw.Write([]byte("back")) }()
	if got := readN(t, cr, 4); string(got) != "back" {
		t.Fatalf("post-partition write arrived as %q", got)
	}
	if s := in.Stats(); s.Blackholed != 1 {
		t.Fatalf("blackholed = %d, want 1", s.Blackholed)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	in := New(Config{Seed: 8, Drop: 1})
	ln := in.Listener(base)

	go func() {
		c, err := net.Dial("tcp", base.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 8)
		_ = c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		_, _ = c.Read(buf)
	}()
	sc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// Server->client writes pass through the injector (Drop=1).
	if _, err := sc.Write([]byte("vanish")); err != nil {
		t.Fatal(err)
	}
	if s := in.Stats(); s.Dropped != 1 {
		t.Fatalf("accepted conn bypassed the injector: %+v", s)
	}
}
