package core

import (
	"strings"
	"testing"

	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/scheduler"
	"repro/internal/topology"
)

func TestNewDefaults(t *testing.T) {
	s := New(Config{})
	if s.Engine == nil || s.Grid == nil {
		t.Fatal("missing engine or grid")
	}
	if _, ok := s.Fabric().(*netsim.Network); !ok {
		t.Fatalf("default fabric = %T", s.Fabric())
	}
}

func TestPacketGranularity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Granularity = PacketLevel
	s := New(cfg)
	if _, ok := s.Fabric().(*netsim.PacketNet); !ok {
		t.Fatalf("fabric = %T", s.Fabric())
	}
}

func TestQueueKindSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Queue = eventq.KindCalendar
	s := New(cfg)
	fired := false
	s.Engine.Schedule(1, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("engine with calendar queue did not run")
	}
}

func TestEndToEndScenario(t *testing.T) {
	s := New(DefaultConfig())
	origin := s.Grid.AddSite("origin", topology.SiteSpec{})
	a := s.Grid.AddSite("a", topology.SiteSpec{Cores: 2, CoreSpeed: 100})
	b := s.Grid.AddSite("b", topology.SiteSpec{Cores: 2, CoreSpeed: 200})
	s.Grid.Link(origin, a, 1e6, 0.01)
	s.Grid.Link(origin, b, 1e6, 0.01)
	s.Grid.Topo.ComputeRoutes()
	s.AddCluster(a, scheduler.FCFS)
	s.AddCluster(b, scheduler.FCFS)
	broker := s.NewBroker("main", scheduler.MCTPolicy{})
	done := 0
	broker.OnDone(func(j *scheduler.Job) { done++ })
	for i := 0; i < 10; i++ {
		broker.Submit(&scheduler.Job{ID: i, Name: "t", Ops: 500, Origin: origin})
	}
	s.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	var sb strings.Builder
	if err := s.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Engine", "Clusters", "Brokers", "main", "mct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReplicationIntegration(t *testing.T) {
	s := New(DefaultConfig())
	a := s.Grid.AddSite("a", topology.SiteSpec{Cores: 1, CoreSpeed: 100, DiskBytes: 1e9, DiskBps: 1e8, DiskChans: 2})
	b := s.Grid.AddSite("b", topology.SiteSpec{Cores: 1, CoreSpeed: 100, DiskBytes: 1e9, DiskBps: 1e8, DiskChans: 2})
	s.Grid.Link(a, b, 1e6, 0.01)
	s.Grid.Topo.ComputeRoutes()
	rep := s.Replication()
	rep.AddStore(a, replication.EvictLRU, replication.ModePull)
	rep.AddStore(b, replication.EvictLRU, replication.ModePull)
	rep.Place(&replication.File{Name: "f", Bytes: 100}, a)
	s.AddCluster(a, scheduler.FCFS)
	s.AddCluster(b, scheduler.FCFS)
	// A broker created after Replication() wires the catalog into the
	// data-aware policy.
	broker := s.NewBroker("d", scheduler.DataAwarePolicy{})
	var placed *topology.Site
	broker.OnDone(func(j *scheduler.Job) { placed = j.Site })
	broker.Submit(&scheduler.Job{ID: 1, Name: "t", Ops: 100, Origin: b, InputFiles: []string{"f"}})
	s.Run()
	if placed != a {
		t.Fatalf("data-aware broker placed job at %v, want a (holds file)", placed)
	}
}

func TestUseGridValidation(t *testing.T) {
	s := New(DefaultConfig())
	other := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.UseGrid(other.Grid)
}

func TestAddClusterValidation(t *testing.T) {
	s := New(DefaultConfig())
	noCPU := s.Grid.AddSite("x", topology.SiteSpec{})
	t.Run("no cpu", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		s.AddCluster(noCPU, scheduler.FCFS)
	})
	t.Run("dup", func(t *testing.T) {
		withCPU := s.Grid.AddSite("y", topology.SiteSpec{Cores: 1, CoreSpeed: 1})
		s.AddCluster(withCPU, scheduler.FCFS)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		s.AddCluster(withCPU, scheduler.FCFS)
	})
}

func TestSelfProfile(t *testing.T) {
	p := SelfProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The framework must tick the paper's "future trends" boxes:
	// generic scope, all four components, O(1) queue availability,
	// distributed execution, and both validation kinds.
	if !p.HasScope("generic LSDS") {
		t.Fatal("self profile not generic")
	}
	if len(p.Components) != 4 {
		t.Fatal("self profile must cover all four component layers")
	}
	if p.Queue != "O(1)" || p.Execution != "distributed" || p.Validation != "math+testbed" {
		t.Fatalf("self profile = %+v", p)
	}
}
