// Package core is the high-level facade of the framework: it wires
// the substrates — engine, grid, network fabric, replication system,
// clusters, brokers, activities — into one Simulation object with
// sensible defaults, so that downstream users (and the runnable
// examples) assemble scenarios in a few lines instead of plumbing
// packages together by hand.
//
// It is also where the framework positions *itself* in the paper's
// taxonomy (SelfProfile): a generic, event-driven, multi-threaded-
// capable, library-specified simulator with pluggable O(1) and
// O(log n) event queues, generator and monitored inputs, textual
// output and validation against both queueing theory and the
// reproduced testbed study.
package core

import (
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/scheduler"
	"repro/internal/taxonomy"
	"repro/internal/topology"
)

// Granularity selects the network model fidelity.
type Granularity int

const (
	// FlowLevel shares link bandwidth max-min between fluid flows.
	FlowLevel Granularity = iota
	// PacketLevel simulates store-and-forward packets (slower, finer).
	PacketLevel
)

// Config tunes a Simulation at construction.
type Config struct {
	Seed        uint64
	Queue       eventq.Kind
	Granularity Granularity
	// MTU applies to PacketLevel fabrics (default 1500 bytes).
	MTU float64
	// Efficiency applies to FlowLevel fabrics (default 1.0).
	Efficiency float64
}

// DefaultConfig returns seed 1, binary-heap FEL, flow-level network.
func DefaultConfig() Config {
	return Config{Seed: 1, Queue: eventq.KindHeap, Granularity: FlowLevel, MTU: 1500, Efficiency: 1.0}
}

// Simulation owns one fully wired scenario.
type Simulation struct {
	Engine *des.Engine
	Grid   *topology.Grid

	fabric      netsim.Fabric
	cfg         Config
	replication *replication.System
	clusters    map[*topology.Site]*scheduler.Cluster
	siteOrder   []*topology.Site
	brokers     []*scheduler.Broker
}

// New creates a simulation with an empty grid.
func New(cfg Config) *Simulation {
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.Efficiency <= 0 {
		cfg.Efficiency = 1.0
	}
	if cfg.Queue == "" {
		cfg.Queue = eventq.KindHeap
	}
	e := des.NewEngine(des.WithSeed(cfg.Seed), des.WithQueue(cfg.Queue))
	return &Simulation{
		Engine:   e,
		Grid:     topology.NewGrid(e),
		cfg:      cfg,
		clusters: make(map[*topology.Site]*scheduler.Cluster),
	}
}

// UseGrid replaces the simulation's grid with a prebuilt one (from the
// topology builders). It must share the simulation's engine.
func (s *Simulation) UseGrid(g *topology.Grid) {
	if g.Engine != s.Engine {
		panic("core: UseGrid with a grid built on a different engine")
	}
	s.Grid = g
	s.fabric = nil // topology changed; rebuild lazily
}

// Fabric returns (building lazily) the network fabric over the grid.
func (s *Simulation) Fabric() netsim.Fabric {
	if s.fabric == nil {
		switch s.cfg.Granularity {
		case PacketLevel:
			s.fabric = netsim.NewPacketNet(s.Engine, s.Grid.Topo, s.cfg.MTU)
		default:
			n := netsim.NewNetwork(s.Engine, s.Grid.Topo)
			n.Efficiency = s.cfg.Efficiency
			s.fabric = n
		}
	}
	return s.fabric
}

// Replication returns (building lazily) the data replication system.
func (s *Simulation) Replication() *replication.System {
	if s.replication == nil {
		s.replication = replication.NewSystem(s.Engine, s.Fabric())
	}
	return s.replication
}

// AddCluster installs a local resource manager at the site using the
// site's provisioned core count and speed.
func (s *Simulation) AddCluster(site *topology.Site, d scheduler.Discipline) *scheduler.Cluster {
	if site.Spec.Cores <= 0 {
		panic(fmt.Sprintf("core: AddCluster at %q which has no CPU", site.Name))
	}
	if s.clusters[site] != nil {
		panic(fmt.Sprintf("core: duplicate cluster at %q", site.Name))
	}
	c := scheduler.NewCluster(s.Engine, site.Name, site.Spec.Cores, site.Spec.CoreSpeed, d)
	s.clusters[site] = c
	s.siteOrder = append(s.siteOrder, site)
	return c
}

// Cluster returns the site's cluster, or nil.
func (s *Simulation) Cluster(site *topology.Site) *scheduler.Cluster { return s.clusters[site] }

// NewBroker creates a broker over every cluster added so far.
func (s *Simulation) NewBroker(name string, policy scheduler.Policy) *scheduler.Broker {
	sites := make([]*topology.Site, len(s.siteOrder))
	copy(sites, s.siteOrder)
	ctx := &scheduler.Context{
		Sites:    sites,
		Clusters: s.clusters,
	}
	if s.replication != nil {
		cat := s.replication.Catalog()
		ctx.Locate = func(name string) []*topology.Site { return cat.Holders(name) }
	}
	b := scheduler.NewBroker(name, s.Engine, s.Fabric(), ctx, policy)
	s.brokers = append(s.brokers, b)
	return b
}

// Run executes until the event queue drains.
func (s *Simulation) Run() float64 { return s.Engine.Run() }

// RunUntil executes to the horizon.
func (s *Simulation) RunUntil(t float64) float64 { return s.Engine.RunUntil(t) }

// Report writes a summary of engine, cluster and broker statistics.
func (s *Simulation) Report(w io.Writer) error {
	st := s.Engine.Stats()
	eng := metrics.NewTable("Engine", "metric", "value")
	eng.AddRowf("simulated time", s.Engine.Now())
	eng.AddRowf("events executed", st.Executed)
	eng.AddRowf("events canceled", st.Canceled)
	eng.AddRowf("max queue length", st.MaxQueue)
	if err := eng.Write(w); err != nil {
		return err
	}
	if len(s.siteOrder) > 0 {
		ct := metrics.NewTable("Clusters", "site", "cores", "completed", "utilization")
		for _, site := range s.siteOrder {
			c := s.clusters[site]
			ct.AddRowf(site.Name, c.Cores(), c.Completed(), c.Utilization())
		}
		if err := ct.Write(w); err != nil {
			return err
		}
	}
	if len(s.brokers) > 0 {
		bt := metrics.NewTable("Brokers", "broker", "policy", "submitted", "completed", "rejected", "mean response", "spend")
		for _, b := range s.brokers {
			bt.AddRowf(b.Name, b.Policy().Name(), b.Submitted, b.Completed, b.Rejected, b.Response.Mean(), b.Spend)
		}
		if err := bt.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// SelfProfile positions this framework in its own taxonomy — the
// "future trends" checklist of the paper: generic scope, all four
// component layers, dynamic components, both input kinds, pluggable
// O(1) queues, multi-threaded/distributed execution, and validation
// against both mathematics (queueing theory, E6) and the published
// testbed study (E7).
func SelfProfile() *taxonomy.Profile {
	return &taxonomy.Profile{
		Name:       "lsds (this work)",
		Motivation: "generic LSDS simulation: reproduce the surveyed designs under one engine",
		Scope: []taxonomy.Scope{
			taxonomy.ScopeGeneric, taxonomy.ScopeScheduling,
			taxonomy.ScopeReplication, taxonomy.ScopeTransport, taxonomy.ScopeEconomy,
		},
		Components: []taxonomy.Component{
			taxonomy.CompHosts, taxonomy.CompNetwork, taxonomy.CompMiddleware, taxonomy.CompApps,
		},
		DynamicComponents: true,
		Behavior:          taxonomy.Probabilistic,
		Mechanics:         taxonomy.MechDES,
		DESKinds: []taxonomy.DESKind{
			taxonomy.DESEventDriven, taxonomy.DESTimeDriven, taxonomy.DESTraceDriven,
		},
		Execution:        taxonomy.ExecDistributed,
		MultiThreaded:    true,
		DynamicBalancing: true,
		Queue:            taxonomy.QueueO1,
		JobMapping:       "goroutine active objects; pooled LP workers",
		Spec:             []taxonomy.SpecStyle{taxonomy.SpecLibrary},
		Inputs:           []taxonomy.InputKind{taxonomy.InputGenerator, taxonomy.InputMonitored},
		Outputs:          []taxonomy.OutputKind{taxonomy.OutTextual, taxonomy.OutGraphical},
		Validation:       taxonomy.ValidationBothKind,
	}
}
