package workload

import (
	"fmt"

	"repro/internal/replication"
	"repro/internal/rng"
)

// The LHC-style physics workload of the MONARC studies: the detector
// (T0) produces RAW events continuously; reconstruction derives ESD
// (event summary data) and AOD (analysis object data) products; tier
// centres run reconstruction and analysis jobs against those products.
//
// Sizes follow the canonical MONARC/LCG planning numbers (order of
// magnitude): RAW ~2 GB/file, ESD ~0.5 GB, AOD ~0.05 GB, with
// reconstruction demanding far more compute than analysis.

// LHCProduct identifies a data-product kind.
type LHCProduct int

// The LHC data products.
const (
	RAW LHCProduct = iota
	ESD
	AOD
)

// String returns the product name.
func (p LHCProduct) String() string {
	switch p {
	case RAW:
		return "RAW"
	case ESD:
		return "ESD"
	case AOD:
		return "AOD"
	default:
		return fmt.Sprintf("LHCProduct(%d)", int(p))
	}
}

// LHCSpec parameterizes the synthetic physics workload.
type LHCSpec struct {
	RAWBytes float64 // size of one RAW file
	ESDBytes float64
	AODBytes float64
	// RunPeriod is the mean gap between data-taking runs (seconds);
	// each run produces one RAW file at T0.
	RunPeriod float64
	// RecoOpsPerByte scales reconstruction compute to RAW size.
	RecoOpsPerByte float64
	// AnaOpsPerByte scales analysis compute to AOD size.
	AnaOpsPerByte float64
}

// DefaultLHCSpec returns the canonical parameterization.
func DefaultLHCSpec() LHCSpec {
	return LHCSpec{
		RAWBytes:       2e9,
		ESDBytes:       5e8,
		AODBytes:       5e7,
		RunPeriod:      600, // a run every 10 minutes
		RecoOpsPerByte: 50,
		AnaOpsPerByte:  20,
	}
}

// LHCFile names the i-th file of a product: "RAW-00042" etc.
func LHCFile(p LHCProduct, i int) string { return fmt.Sprintf("%s-%05d", p, i) }

// LHCRun emits RAW production events: every (exponentially distributed)
// run period, produce is called with the next RAW file. Attach it to a
// replication.Agent to reproduce the T0→T1 distribution study.
func LHCRun(spec LHCSpec, src *rng.Source, produce func(i int, f *replication.File)) *Activity {
	i := 0
	return &Activity{
		Name:         "lhc-run",
		Interarrival: func() float64 { return src.Exp(1 / spec.RunPeriod) },
		Emit: func(int) {
			f := &replication.File{Name: LHCFile(RAW, i), Bytes: spec.RAWBytes}
			produce(i, f)
			i++
		},
	}
}

// RecoOps returns the compute demand of reconstructing one RAW file.
func (s LHCSpec) RecoOps() float64 { return s.RecoOpsPerByte * s.RAWBytes }

// AnaOps returns the compute demand of one analysis pass over one AOD.
func (s LHCSpec) AnaOps() float64 { return s.AnaOpsPerByte * s.AODBytes }
