package workload

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/replication"
	"repro/internal/rng"
	"repro/internal/scheduler"
)

func TestActivityEmitsCount(t *testing.T) {
	e := des.NewEngine(des.WithSeed(3))
	src := e.Stream("a")
	var times []float64
	act := &Activity{
		Name:         "a",
		Interarrival: Poisson(src, 2.0),
		MaxJobs:      50,
		Emit:         func(i int) { times = append(times, e.Now()) },
	}
	act.Start(e)
	e.Run()
	if act.Emitted() != 50 || len(times) != 50 {
		t.Fatalf("emitted = %d", act.Emitted())
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("emission times not monotone")
		}
	}
	// Mean interarrival should be near 0.5.
	mean := times[len(times)-1] / 50
	if mean < 0.2 || mean > 1.2 {
		t.Fatalf("mean gap = %v", mean)
	}
}

func TestActivityUntilLimit(t *testing.T) {
	e := des.NewEngine()
	count := 0
	act := &Activity{
		Name:         "u",
		Interarrival: Fixed(1),
		Until:        10.5,
		Emit:         func(int) { count++ },
	}
	act.Start(e)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestActivityValidation(t *testing.T) {
	e := des.NewEngine()
	t.Run("missing emit", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		(&Activity{Name: "x", Interarrival: Fixed(1)}).Start(e)
		e.Run()
	})
	t.Run("negative gap", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		e2 := des.NewEngine()
		(&Activity{
			Name:         "neg",
			Interarrival: func() float64 { return -1 },
			MaxJobs:      1,
			Emit:         func(int) {},
		}).Start(e2)
		e2.Run()
	})
}

func TestMixWeights(t *testing.T) {
	src := rng.New(7)
	mix := NewMix(src,
		JobClass{Name: "small", Weight: 3, Ops: func() float64 { return 10 }},
		JobClass{Name: "big", Weight: 1, Ops: func() float64 { return 1000 },
			InputBytes: func() float64 { return 5 }, Cores: 4},
	)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		j := mix.Draw()
		counts[j.Name]++
		if j.Name == "big" {
			if j.Ops != 1000 || j.InputBytes != 5 || j.Cores != 4 {
				t.Fatalf("big job fields: %+v", j)
			}
		}
		if j.ID != i {
			t.Fatal("IDs not sequential")
		}
	}
	frac := float64(counts["small"]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("small fraction = %v, want 0.75", frac)
	}
}

func TestMixValidation(t *testing.T) {
	src := rng.New(1)
	for name, fn := range map[string]func(){
		"empty":      func() { NewMix(src) },
		"zero w":     func() { NewMix(src, JobClass{Name: "x", Weight: 0, Ops: func() float64 { return 1 }}) },
		"missing op": func() { NewMix(src, JobClass{Name: "x", Weight: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTraceGenerateAndReplay(t *testing.T) {
	src := rng.New(11)
	mix := NewMix(src, JobClass{Name: "c", Weight: 1, Ops: func() float64 { return src.Exp(0.001) }})
	recs := GenerateTrace(src, mix, Fixed(2), 25)
	if len(recs) != 25 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Time != float64(i+1)*2 {
			t.Fatalf("record %d at %v", i, r.Time)
		}
	}
	e := des.NewEngine()
	var submitted []*scheduler.Job
	var at []float64
	Replay(e, recs, func(j *scheduler.Job) {
		submitted = append(submitted, j)
		at = append(at, e.Now())
	})
	e.Run()
	if len(submitted) != 25 {
		t.Fatalf("replayed %d", len(submitted))
	}
	for i := range recs {
		if at[i] != recs[i].Time || submitted[i].Ops != recs[i].Ops {
			t.Fatalf("replay mismatch at %d", i)
		}
	}
}

func TestLHCRunProducesSequentialFiles(t *testing.T) {
	e := des.NewEngine(des.WithSeed(5))
	spec := DefaultLHCSpec()
	var produced []*replication.File
	act := LHCRun(spec, e.Stream("lhc"), func(i int, f *replication.File) {
		produced = append(produced, f)
	})
	act.MaxJobs = 10
	act.Start(e)
	e.Run()
	if len(produced) != 10 {
		t.Fatalf("produced = %d", len(produced))
	}
	if produced[0].Name != "RAW-00000" || produced[9].Name != "RAW-00009" {
		t.Fatalf("names: %s .. %s", produced[0].Name, produced[9].Name)
	}
	for _, f := range produced {
		if f.Bytes != spec.RAWBytes {
			t.Fatalf("size %v", f.Bytes)
		}
	}
}

func TestLHCSpecDerived(t *testing.T) {
	spec := DefaultLHCSpec()
	if spec.RecoOps() != spec.RecoOpsPerByte*spec.RAWBytes {
		t.Fatal("RecoOps")
	}
	if spec.AnaOps() != spec.AnaOpsPerByte*spec.AODBytes {
		t.Fatal("AnaOps")
	}
	if RAW.String() != "RAW" || ESD.String() != "ESD" || AOD.String() != "AOD" {
		t.Fatal("product names")
	}
	if LHCProduct(9).String() == "" {
		t.Fatal("unknown product")
	}
	if LHCFile(ESD, 7) != "ESD-00007" {
		t.Fatalf("LHCFile = %s", LHCFile(ESD, 7))
	}
}
