// Package workload implements the user-application layer of the
// taxonomy: "Users" / "Activity" objects that generate data-processing
// jobs from stochastic scenarios (MONARC's vocabulary), reusable job
// mixes, synthetic trace generation, and trace replay for trace-driven
// simulation.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/scheduler"
)

// Activity is an open arrival process: it emits jobs with stochastic
// interarrival times until a count or time limit is reached. It is
// the framework's "Activity object" in the MONARC sense.
type Activity struct {
	Name string
	// Interarrival draws the next gap (seconds).
	Interarrival func() float64
	// MaxJobs stops the activity after this many emissions (0 = no cap).
	MaxJobs int
	// Until stops the activity at this simulation time (0 = no limit).
	Until float64
	// Emit receives each generated job index.
	Emit func(i int)

	emitted int
}

// Start launches the activity on the engine at the current time.
func (a *Activity) Start(e *des.Engine) {
	if a.Interarrival == nil || a.Emit == nil {
		panic(fmt.Sprintf("workload: activity %q missing Interarrival or Emit", a.Name))
	}
	e.Spawn("activity:"+a.Name, func(p *des.Process) {
		for {
			if a.MaxJobs > 0 && a.emitted >= a.MaxJobs {
				return
			}
			gap := a.Interarrival()
			if gap < 0 {
				panic(fmt.Sprintf("workload: activity %q drew negative gap %v", a.Name, gap))
			}
			p.Hold(gap)
			if a.Until > 0 && p.Now() > a.Until {
				return
			}
			a.Emit(a.emitted)
			a.emitted++
		}
	})
}

// Emitted returns the number of jobs generated so far.
func (a *Activity) Emitted() int { return a.emitted }

// Poisson returns an exponential-interarrival function at the given
// rate (jobs per second), drawing from src.
func Poisson(src *rng.Source, rate float64) func() float64 {
	return func() float64 { return src.Exp(rate) }
}

// Fixed returns a constant-interarrival function.
func Fixed(gap float64) func() float64 {
	return func() float64 { return gap }
}

// JobClass is one component of a job mix.
type JobClass struct {
	Name   string
	Weight float64
	// Ops draws the compute demand.
	Ops func() float64
	// InputBytes / OutputBytes draw data sizes (nil = 0).
	InputBytes  func() float64
	OutputBytes func() float64
	Cores       int
}

// Mix samples jobs from weighted classes.
type Mix struct {
	classes []JobClass
	cdf     []float64
	src     *rng.Source
	nextID  int
}

// NewMix builds a mix; weights need not sum to 1.
func NewMix(src *rng.Source, classes ...JobClass) *Mix {
	if len(classes) == 0 {
		panic("workload: NewMix with no classes")
	}
	cdf := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		if c.Weight <= 0 || c.Ops == nil {
			panic(fmt.Sprintf("workload: bad class %q", c.Name))
		}
		total += c.Weight
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Mix{classes: classes, cdf: cdf, src: src}
}

// Draw samples the next job.
func (m *Mix) Draw() *scheduler.Job {
	u := m.src.Float64()
	idx := sort.SearchFloat64s(m.cdf, u)
	c := m.classes[idx]
	j := &scheduler.Job{
		ID:    m.nextID,
		Name:  c.Name,
		Ops:   c.Ops(),
		Cores: c.Cores,
	}
	m.nextID++
	if c.InputBytes != nil {
		j.InputBytes = c.InputBytes()
	}
	if c.OutputBytes != nil {
		j.OutputBytes = c.OutputBytes()
	}
	return j
}

// TraceRecord is one line of a synthetic or captured workload trace.
type TraceRecord struct {
	Time        float64
	JobID       int
	Class       string
	Ops         float64
	InputBytes  float64
	OutputBytes float64
	Cores       int
}

// GenerateTrace materializes n arrivals from the mix and interarrival
// process into a deterministic, replayable trace.
func GenerateTrace(src *rng.Source, mix *Mix, interarrival func() float64, n int) []TraceRecord {
	_ = src // reserved for future jitter fields; draws come from mix/interarrival
	recs := make([]TraceRecord, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		now += interarrival()
		j := mix.Draw()
		recs = append(recs, TraceRecord{
			Time:        now,
			JobID:       j.ID,
			Class:       j.Name,
			Ops:         j.Ops,
			InputBytes:  j.InputBytes,
			OutputBytes: j.OutputBytes,
			Cores:       j.Cores,
		})
	}
	return recs
}

// Replay schedules submit for every record at its timestamp — the
// trace-driven DES mode of the taxonomy ("reading in a set of events
// that are collected independently from another environment").
func Replay(e *des.Engine, recs []TraceRecord, submit func(*scheduler.Job)) {
	for _, r := range recs {
		r := r
		e.At(r.Time, func() {
			submit(&scheduler.Job{
				ID:          r.JobID,
				Name:        r.Class,
				Ops:         r.Ops,
				InputBytes:  r.InputBytes,
				OutputBytes: r.OutputBytes,
				Cores:       r.Cores,
			})
		})
	}
}
