// Package netsim is the network substrate of the simulation framework.
//
// The taxonomy of the reproduced paper classifies simulators by the
// granularity of their network models: packet-level simulation
// ("model in detail the flow of each packet through the network, a
// time consuming operation that leads to better output results")
// versus flow-level simulation ("model only the flows of packets going
// from one end to another"). This package implements both behind one
// Fabric interface:
//
//   - Network: a flow-level model with progressive max-min fair
//     bandwidth sharing across links (the SimGrid approach), paying a
//     handful of events per transfer;
//   - PacketNet: a store-and-forward packet-level model paying one
//     event per packet per hop.
//
// Topologies are graphs of Nodes joined by full-duplex Links; routing
// is static shortest-path (hop count), precomputed by BFS.
package netsim

import (
	"fmt"

	"repro/internal/des"
)

// Node is a network endpoint or router.
type Node struct {
	ID   int
	Name string
}

// Link is one direction of a full-duplex connection between two nodes.
// Connect creates both directions; each direction has independent
// capacity, as in real point-to-point circuits.
type Link struct {
	ID      int
	From    *Node
	To      *Node
	Bps     float64 // capacity, bytes per second
	Latency float64 // propagation delay, seconds

	// BackgroundLoad is the fraction of capacity consumed by ambient
	// traffic not modeled as flows (0..1). The usable capacity is
	// Bps*(1-BackgroundLoad).
	BackgroundLoad float64

	// accounting
	bytesCarried float64
}

// usable returns the capacity available to simulated flows.
func (l *Link) usable() float64 {
	u := l.Bps * (1 - l.BackgroundLoad)
	if u < 0 {
		return 0
	}
	return u
}

// BytesCarried returns the cumulative bytes this link direction has
// carried (flow-level accounting).
func (l *Link) BytesCarried() float64 { return l.bytesCarried }

// Topology is the shared graph under both network models.
type Topology struct {
	nodes []*Node
	links []*Link
	// out[from.ID] lists directed links leaving the node.
	out [][]*Link
	// nextLink[src][dst] is the first directed link on the shortest
	// path src→dst, nil when unreachable or src == dst.
	nextLink [][]*Link
	routed   bool
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{} }

// AddNode creates a node.
func (t *Topology) AddNode(name string) *Node {
	n := &Node{ID: len(t.nodes), Name: name}
	t.nodes = append(t.nodes, n)
	t.out = append(t.out, nil)
	t.routed = false
	return n
}

// Nodes returns all nodes in creation order.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Links returns all directed links in creation order.
func (t *Topology) Links() []*Link { return t.links }

// Connect joins a and b with a full-duplex link: bps bytes/second and
// the given one-way latency in each direction. It returns the two
// directed links (a→b, b→a).
func (t *Topology) Connect(a, b *Node, bps, latency float64) (*Link, *Link) {
	if a == b {
		panic("netsim: Connect node to itself")
	}
	if bps <= 0 || latency < 0 {
		panic(fmt.Sprintf("netsim: Connect with bps=%v latency=%v", bps, latency))
	}
	ab := &Link{ID: len(t.links), From: a, To: b, Bps: bps, Latency: latency}
	t.links = append(t.links, ab)
	ba := &Link{ID: len(t.links), From: b, To: a, Bps: bps, Latency: latency}
	t.links = append(t.links, ba)
	t.out[a.ID] = append(t.out[a.ID], ab)
	t.out[b.ID] = append(t.out[b.ID], ba)
	t.routed = false
	return ab, ba
}

// ComputeRoutes (re)builds the all-pairs next-hop table by BFS from
// every node. It is called automatically on first use; call it
// explicitly after mutating a live topology.
func (t *Topology) ComputeRoutes() {
	n := len(t.nodes)
	t.nextLink = make([][]*Link, n)
	for src := 0; src < n; src++ {
		t.nextLink[src] = make([]*Link, n)
		// BFS over hops from src; record the first link taken.
		visited := make([]bool, n)
		visited[src] = true
		type qe struct {
			node  int
			first *Link
		}
		queue := []qe{{node: src}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, l := range t.out[cur.node] {
				dst := l.To.ID
				if visited[dst] {
					continue
				}
				visited[dst] = true
				first := cur.first
				if first == nil {
					first = l
				}
				t.nextLink[src][dst] = first
				queue = append(queue, qe{node: dst, first: first})
			}
		}
	}
	t.routed = true
}

// Route returns the directed links on the shortest path src→dst.
// It returns nil when dst is unreachable, and an empty path when
// src == dst.
func (t *Topology) Route(src, dst *Node) []*Link {
	if !t.routed {
		t.ComputeRoutes()
	}
	if src == dst {
		return []*Link{}
	}
	var path []*Link
	cur := src
	for cur != dst {
		l := t.nextLink[cur.ID][dst.ID]
		if l == nil {
			return nil
		}
		// Follow hop-by-hop: the next-hop table stores the *first*
		// link; advance to its far end and continue.
		path = append(path, l)
		cur = l.To
		if len(path) > len(t.links) {
			panic("netsim: routing loop")
		}
	}
	return path
}

// PathLatency returns the summed one-way latency along src→dst, or -1
// when unreachable.
func (t *Topology) PathLatency(src, dst *Node) float64 {
	route := t.Route(src, dst)
	if route == nil {
		return -1
	}
	sum := 0.0
	for _, l := range route {
		sum += l.Latency
	}
	return sum
}

// Fabric abstracts the two network granularities: a transfer of a
// number of bytes between two nodes, completing via callback or
// blocking a simulated process.
type Fabric interface {
	// Transfer moves bytes from src to dst, invoking done with the
	// completion time. It panics when dst is unreachable.
	Transfer(src, dst *Node, bytes float64, done func())
	// Send blocks the calling process until the transfer completes.
	Send(p *des.Process, src, dst *Node, bytes float64)
	// Topo exposes the underlying topology.
	Topo() *Topology
}
