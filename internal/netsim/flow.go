package netsim

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Network is the flow-level fabric: every active transfer is a fluid
// flow, and link capacity is divided among competing flows by
// progressive (max-min) fair sharing, recomputed whenever a flow
// starts or finishes. A transfer therefore costs O(changes) events
// rather than O(packets), which is what lets the framework simulate
// wide-area Data Grid traffic at scale.
type Network struct {
	e    *des.Engine
	topo *Topology

	// Efficiency models TCP's inability to saturate a path (slow
	// start, ack clocking): achievable flow rate is capacity times
	// this factor. 1.0 means ideal fluid behavior.
	Efficiency float64

	flows      []*Flow // active flows, in start order (determinism)
	lastUpdate float64

	// accounting
	started   uint64
	completed uint64
}

// Flow is one active fluid transfer.
type Flow struct {
	Src, Dst  *Node
	Bytes     float64
	remaining float64
	rate      float64
	route     []*Link
	startTime float64
	doneTime  float64
	done      func()
	timer     des.Timer
	net       *Network
	finished  bool
}

// Rate returns the flow's current allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes not yet delivered (as of the last
// recompute; exact at event boundaries).
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports completion.
func (f *Flow) Finished() bool { return f.finished }

// Start returns the simulation time the transfer was initiated.
func (f *Flow) Start() float64 { return f.startTime }

// End returns the completion time (0 until finished).
func (f *Flow) End() float64 { return f.doneTime }

// NewNetwork creates a flow-level fabric over the topology, driven by
// engine e.
func NewNetwork(e *des.Engine, topo *Topology) *Network {
	return &Network{e: e, topo: topo, Efficiency: 1.0}
}

// Topo implements Fabric.
func (n *Network) Topo() *Topology { return n.topo }

// ActiveFlows returns the number of in-progress transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Completed returns the cumulative number of finished transfers.
func (n *Network) Completed() uint64 { return n.completed }

// Transfer implements Fabric. The transfer experiences the route's
// propagation latency once, then drains at the max-min fair rate.
// Zero-byte transfers complete after the latency alone.
func (n *Network) Transfer(src, dst *Node, bytes float64, done func()) {
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("netsim: Transfer of %v bytes", bytes))
	}
	route := n.topo.Route(src, dst)
	if route == nil {
		panic(fmt.Sprintf("netsim: no route %s -> %s", src.Name, dst.Name))
	}
	latency := 0.0
	for _, l := range route {
		latency += l.Latency
	}
	n.started++
	f := &Flow{
		Src: src, Dst: dst,
		Bytes: bytes, remaining: bytes,
		route: route, startTime: n.e.Now(),
		done: done, net: n,
	}
	if bytes == 0 || len(route) == 0 {
		n.e.ScheduleNamed("net:zero", latency, func() { n.finish(f) })
		return
	}
	n.e.ScheduleNamed("net:flowstart", latency, func() {
		n.advance()
		n.flows = append(n.flows, f)
		n.rebalance()
	})
}

// Send implements Fabric: the blocking form for simulated processes.
func (n *Network) Send(p *des.Process, src, dst *Node, bytes float64) {
	doneCh := false
	n.Transfer(src, dst, bytes, func() {
		doneCh = true
		p.Activate()
	})
	for !doneCh {
		p.Passivate()
	}
}

// advance charges every active flow for the bytes moved since the last
// recompute point.
func (n *Network) advance() {
	now := n.e.Now()
	dt := now - n.lastUpdate
	if dt > 0 {
		for _, f := range n.flows {
			moved := f.rate * dt
			f.remaining -= moved
			if f.remaining < 0 {
				f.remaining = 0
			}
			for _, l := range f.route {
				l.bytesCarried += moved
			}
		}
	}
	n.lastUpdate = now
}

// rebalance recomputes max-min fair rates and reschedules completions.
// Must be called with byte accounting already advanced to Now.
func (n *Network) rebalance() {
	// Progressive filling. Residual capacity per link; flows are
	// "fixed" once their bottleneck link saturates.
	residual := make(map[*Link]float64)
	count := make(map[*Link]int)
	for _, f := range n.flows {
		for _, l := range f.route {
			if _, ok := residual[l]; !ok {
				residual[l] = l.usable() * n.Efficiency
			}
			count[l]++
		}
	}
	unfixed := make(map[*Flow]struct{}, len(n.flows))
	for _, f := range n.flows {
		unfixed[f] = struct{}{}
		f.rate = 0
	}
	for len(unfixed) > 0 {
		// Find the bottleneck link: minimal residual/count over links
		// with unfixed flows.
		var bottleneck *Link
		best := math.Inf(1)
		for l, c := range count {
			if c == 0 {
				continue
			}
			share := residual[l] / float64(c)
			if share < best || (share == best && (bottleneck == nil || l.ID < bottleneck.ID)) {
				best = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Fix every unfixed flow crossing the bottleneck at the share.
		for f := range unfixed {
			crosses := false
			for _, l := range f.route {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = best
			delete(unfixed, f)
			for _, l := range f.route {
				residual[l] -= best
				if residual[l] < 0 {
					residual[l] = 0
				}
				count[l]--
			}
		}
	}
	// Reschedule completion events in flow-start order, so equal
	// completion instants resolve deterministically.
	for _, f := range n.flows {
		f.timer.Cancel()
		f.timer = des.Timer{}
		if f.rate <= 0 {
			continue // stalled: no capacity on some link
		}
		f := f
		eta := f.remaining / f.rate
		f.timer = n.e.ScheduleNamed("net:flowend", eta, func() {
			n.advance()
			f.remaining = 0
			n.removeFlow(f)
			n.rebalance()
			n.finish(f)
		})
	}
}

func (n *Network) removeFlow(f *Flow) {
	for i, g := range n.flows {
		if g == f {
			n.flows = append(n.flows[:i], n.flows[i+1:]...)
			return
		}
	}
}

func (n *Network) finish(f *Flow) {
	f.finished = true
	f.doneTime = n.e.Now()
	n.completed++
	if f.done != nil {
		f.done()
	}
}

var _ Fabric = (*Network)(nil)
