package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rng"
)

// TestQuickMaxMinRespectsCapacity checks the two defining invariants
// of max-min fair sharing on random topologies and flow sets:
//
//  1. feasibility — the summed rate across each link never exceeds its
//     capacity;
//  2. work conservation for single-link flows — if every flow crosses
//     one shared link, the full capacity is allocated.
func TestQuickMaxMinRespectsCapacity(t *testing.T) {
	f := func(seed uint64, nFlowsRaw uint8) bool {
		src := rng.New(seed)
		nFlows := int(nFlowsRaw%20) + 1
		e := des.NewEngine()
		topo := NewTopology()
		// Random chain of 3-6 nodes.
		nNodes := 3 + src.Intn(4)
		nodes := make([]*Node, nNodes)
		for i := range nodes {
			nodes[i] = topo.AddNode("n")
		}
		caps := make([]float64, nNodes-1)
		for i := 0; i+1 < nNodes; i++ {
			caps[i] = 100 + src.Float64()*1000
			topo.Connect(nodes[i], nodes[i+1], caps[i], 0)
		}
		net := NewNetwork(e, topo)
		// Start flows between random distinct nodes; huge sizes so all
		// stay active at observation time.
		for i := 0; i < nFlows; i++ {
			a := src.Intn(nNodes)
			b := src.Intn(nNodes)
			if a == b {
				continue
			}
			net.Transfer(nodes[a], nodes[b], 1e15, nil)
		}
		ok := true
		e.Schedule(0.001, func() {
			// Feasibility per directed link.
			load := map[*Link]float64{}
			for _, fl := range net.flows {
				if fl.rate < 0 {
					ok = false
				}
				for _, l := range fl.route {
					load[l] += fl.rate
				}
			}
			for l, sum := range load {
				if sum > l.usable()+1e-6 {
					ok = false
				}
			}
			e.Stop()
		})
		e.RunUntil(0.002)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinWorkConserving(t *testing.T) {
	// N flows over one link: each gets exactly capacity/N.
	for _, n := range []int{1, 2, 3, 7, 16} {
		e := des.NewEngine()
		topo, nodes := line(2, 1000, 0)
		net := NewNetwork(e, topo)
		for i := 0; i < n; i++ {
			net.Transfer(nodes[0], nodes[1], 1e12, nil)
		}
		e.Schedule(0.001, func() {
			total := 0.0
			for _, f := range net.flows {
				total += f.rate
				if math.Abs(f.rate-1000/float64(n)) > 1e-6 {
					t.Errorf("n=%d: flow rate %v, want %v", n, f.rate, 1000/float64(n))
				}
			}
			if math.Abs(total-1000) > 1e-6 {
				t.Errorf("n=%d: total %v, want 1000", n, total)
			}
			e.Stop()
		})
		e.RunUntil(0.002)
	}
}

// TestQuickTransfersAllComplete: any batch of finite transfers on a
// connected topology eventually completes, and byte accounting is
// conserved.
func TestQuickTransfersAllComplete(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%30) + 1
		e := des.NewEngine()
		topo, nodes := line(4, 1e6, 0.001)
		net := NewNetwork(e, topo)
		done := 0
		totalBytes := 0.0
		for i := 0; i < n; i++ {
			a := nodes[src.Intn(4)]
			b := nodes[src.Intn(4)]
			size := src.Float64() * 1e6
			totalBytes += size
			net.Transfer(a, b, size, func() { done++ })
		}
		e.Run()
		return done == n && net.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPacketNetCompletes mirrors the flow-level property at
// packet granularity.
func TestQuickPacketNetCompletes(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%10) + 1
		e := des.NewEngine()
		topo, nodes := line(3, 1e6, 0.001)
		pn := NewPacketNet(e, topo, 1000)
		done := 0
		for i := 0; i < n; i++ {
			a := nodes[src.Intn(3)]
			b := nodes[src.Intn(3)]
			pn.Transfer(a, b, src.Float64()*5e4, func() { done++ })
		}
		e.Run()
		return done == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
