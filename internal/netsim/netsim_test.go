package netsim

import (
	"math"
	"testing"

	"repro/internal/des"
)

// line builds a chain topology n0 - n1 - ... - n(k-1) with uniform
// link parameters.
func line(k int, bps, lat float64) (*Topology, []*Node) {
	topo := NewTopology()
	nodes := make([]*Node, k)
	for i := range nodes {
		nodes[i] = topo.AddNode("n" + string(rune('0'+i)))
	}
	for i := 0; i+1 < k; i++ {
		topo.Connect(nodes[i], nodes[i+1], bps, lat)
	}
	return topo, nodes
}

func TestRouteDirectAndMultiHop(t *testing.T) {
	topo, nodes := line(4, 100, 0.01)
	r := topo.Route(nodes[0], nodes[3])
	if len(r) != 3 {
		t.Fatalf("route length = %d", len(r))
	}
	if r[0].From != nodes[0] || r[2].To != nodes[3] {
		t.Fatal("route endpoints wrong")
	}
	if got := topo.Route(nodes[2], nodes[2]); len(got) != 0 || got == nil {
		t.Fatalf("self route = %v", got)
	}
	if lat := topo.PathLatency(nodes[0], nodes[3]); math.Abs(lat-0.03) > 1e-12 {
		t.Fatalf("path latency = %v", lat)
	}
}

func TestRouteUnreachable(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a")
	b := topo.AddNode("b")
	if r := topo.Route(a, b); r != nil {
		t.Fatalf("route = %v, want nil", r)
	}
	if lat := topo.PathLatency(a, b); lat != -1 {
		t.Fatalf("latency = %v", lat)
	}
}

func TestRouteShortestPath(t *testing.T) {
	// Triangle with an extra detour: a-b direct plus a-c-b; BFS must
	// pick the 1-hop route.
	topo := NewTopology()
	a, b, c := topo.AddNode("a"), topo.AddNode("b"), topo.AddNode("c")
	topo.Connect(a, b, 100, 0.5)
	topo.Connect(a, c, 100, 0.001)
	topo.Connect(c, b, 100, 0.001)
	if r := topo.Route(a, b); len(r) != 1 {
		t.Fatalf("route hops = %d, want 1", len(r))
	}
}

func TestConnectValidation(t *testing.T) {
	topo := NewTopology()
	a := topo.AddNode("a")
	b := topo.AddNode("b")
	for name, fn := range map[string]func(){
		"self":        func() { topo.Connect(a, a, 1, 0) },
		"zero bps":    func() { topo.Connect(a, b, 0, 0) },
		"neg latency": func() { topo.Connect(a, b, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlowSingleTransferTiming(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0.25) // 1000 B/s, 0.25 s latency
	net := NewNetwork(e, topo)
	var doneAt float64 = -1
	net.Transfer(nodes[0], nodes[1], 5000, func() { doneAt = e.Now() })
	e.Run()
	// latency 0.25 + 5000/1000 = 5.25
	if math.Abs(doneAt-5.25) > 1e-9 {
		t.Fatalf("doneAt = %v, want 5.25", doneAt)
	}
	if net.Completed() != 1 || net.ActiveFlows() != 0 {
		t.Fatal("flow accounting wrong")
	}
}

func TestFlowFairSharing(t *testing.T) {
	// Two simultaneous flows over one link: each gets half the
	// bandwidth, so both finish together at latency + 2*size/bw.
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	net := NewNetwork(e, topo)
	var t1, t2 float64
	net.Transfer(nodes[0], nodes[1], 1000, func() { t1 = e.Now() })
	net.Transfer(nodes[0], nodes[1], 1000, func() { t2 = e.Now() })
	e.Run()
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Fatalf("t1=%v t2=%v, want 2", t1, t2)
	}
}

func TestFlowRateRecoversAfterCompetitorFinishes(t *testing.T) {
	// Flow A: 3000 B; Flow B: 1000 B, same 1000 B/s link, both start
	// at 0. Shared until B finishes at t=2 (each at 500 B/s, B moved
	// 1000). A then has 2000 left at full rate → done at t=4.
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	net := NewNetwork(e, topo)
	var ta, tb float64
	net.Transfer(nodes[0], nodes[1], 3000, func() { ta = e.Now() })
	net.Transfer(nodes[0], nodes[1], 1000, func() { tb = e.Now() })
	e.Run()
	if math.Abs(tb-2) > 1e-9 {
		t.Fatalf("tb = %v, want 2", tb)
	}
	if math.Abs(ta-4) > 1e-9 {
		t.Fatalf("ta = %v, want 4", ta)
	}
}

func TestFlowMaxMinBottleneck(t *testing.T) {
	// Y topology: a-c and b-c feed into c-d (the bottleneck).
	// Flow1 a→d, Flow2 b→d: each gets half of c-d.
	e := des.NewEngine()
	topo := NewTopology()
	a, b, c, d := topo.AddNode("a"), topo.AddNode("b"), topo.AddNode("c"), topo.AddNode("d")
	topo.Connect(a, c, 10000, 0)
	topo.Connect(b, c, 10000, 0)
	topo.Connect(c, d, 1000, 0)
	net := NewNetwork(e, topo)
	var t1, t2 float64
	net.Transfer(a, d, 1000, func() { t1 = e.Now() })
	net.Transfer(b, d, 1000, func() { t2 = e.Now() })
	e.Run()
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Fatalf("t1=%v t2=%v, want 2 (bottleneck share)", t1, t2)
	}
}

func TestFlowMaxMinUnevenRoutes(t *testing.T) {
	// Flow1 uses only link1 (cap 1000); Flow2 uses link1+link2 where
	// link2 caps it at 250. Max-min: Flow2 = 250, Flow1 = 750.
	e := des.NewEngine()
	topo := NewTopology()
	a, b, c := topo.AddNode("a"), topo.AddNode("b"), topo.AddNode("c")
	topo.Connect(a, b, 1000, 0)
	topo.Connect(b, c, 250, 0)
	net := NewNetwork(e, topo)
	// Keep both flows alive long enough to observe rates.
	var f1, f2 *Flow
	var r1, r2 float64
	net.Transfer(a, b, 1e6, nil)
	net.Transfer(a, c, 1e6, nil)
	e.Schedule(1, func() {
		_ = f1
		_ = f2
		for _, f := range net.flows {
			if f.Dst == b {
				r1 = f.Rate()
			} else {
				r2 = f.Rate()
			}
		}
		e.Stop()
	})
	e.Run()
	if math.Abs(r2-250) > 1e-9 {
		t.Fatalf("r2 = %v, want 250", r2)
	}
	if math.Abs(r1-750) > 1e-9 {
		t.Fatalf("r1 = %v, want 750", r1)
	}
}

func TestFlowZeroBytes(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0.5)
	net := NewNetwork(e, topo)
	var doneAt float64 = -1
	net.Transfer(nodes[0], nodes[1], 0, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 0.5 {
		t.Fatalf("zero-byte transfer done at %v, want latency 0.5", doneAt)
	}
}

func TestFlowSelfTransfer(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0.5)
	net := NewNetwork(e, topo)
	done := false
	net.Transfer(nodes[0], nodes[0], 12345, func() { done = true })
	e.Run()
	if !done || e.Now() != 0 {
		t.Fatalf("self transfer done=%v at %v", done, e.Now())
	}
}

func TestFlowEfficiencyFactor(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	net := NewNetwork(e, topo)
	net.Efficiency = 0.5
	var doneAt float64
	net.Transfer(nodes[0], nodes[1], 1000, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt-2) > 1e-9 {
		t.Fatalf("doneAt = %v, want 2 with 50%% efficiency", doneAt)
	}
}

func TestFlowBackgroundLoad(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	ab := topo.Links()[0]
	ab.BackgroundLoad = 0.75
	net := NewNetwork(e, topo)
	var doneAt float64
	net.Transfer(nodes[0], nodes[1], 1000, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt-4) > 1e-9 {
		t.Fatalf("doneAt = %v, want 4 with 75%% background load", doneAt)
	}
}

func TestFlowBlockingSend(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	net := NewNetwork(e, topo)
	var resumed float64 = -1
	e.Spawn("sender", func(p *des.Process) {
		net.Send(p, nodes[0], nodes[1], 2000)
		resumed = p.Now()
	})
	e.Run()
	if math.Abs(resumed-2) > 1e-9 {
		t.Fatalf("resumed = %v, want 2", resumed)
	}
}

func TestFlowLinkAccounting(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(3, 1000, 0)
	net := NewNetwork(e, topo)
	net.Transfer(nodes[0], nodes[2], 500, nil)
	e.Run()
	for i, l := range topo.Links() {
		carried := l.BytesCarried()
		onRoute := l.From.ID < l.To.ID // forward direction links
		if onRoute && math.Abs(carried-500) > 1e-6 {
			t.Fatalf("link %d carried %v, want 500", i, carried)
		}
		if !onRoute && carried != 0 {
			t.Fatalf("reverse link %d carried %v", i, carried)
		}
	}
}

func TestFlowDeterminism(t *testing.T) {
	run := func() []float64 {
		e := des.NewEngine(des.WithSeed(5))
		topo, nodes := line(4, 1e6, 0.01)
		net := NewNetwork(e, topo)
		src := e.Stream("sizes")
		var ends []float64
		for i := 0; i < 200; i++ {
			from := nodes[i%4]
			to := nodes[(i+1+i%3)%4]
			if from == to {
				continue
			}
			delay := float64(i) * 0.01
			size := src.Exp(1.0/1e5) + 1
			e.Schedule(delay, func() {
				net.Transfer(from, to, size, func() { ends = append(ends, e.Now()) })
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPacketNetSingleMessage(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0.1)
	pn := NewPacketNet(e, topo, 100)
	var doneAt float64
	pn.Transfer(nodes[0], nodes[1], 1000, func() { doneAt = e.Now() })
	e.Run()
	// 10 packets pipeline on one link: serialization dominates:
	// last packet finishes tx at 10*0.1s = 1.0, plus 0.1 latency.
	if math.Abs(doneAt-1.1) > 1e-9 {
		t.Fatalf("doneAt = %v, want 1.1", doneAt)
	}
	if pn.PacketsSent() != 10 {
		t.Fatalf("packets = %d", pn.PacketsSent())
	}
}

func TestPacketNetMultiHopPipelining(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(3, 1000, 0)
	pn := NewPacketNet(e, topo, 100)
	var doneAt float64
	pn.Transfer(nodes[0], nodes[2], 1000, func() { doneAt = e.Now() })
	e.Run()
	// Store-and-forward pipelining: first packet reaches hop2 queue at
	// 0.1; hops overlap; last of 10 packets: 10*0.1 + 0.1 = 1.1.
	if math.Abs(doneAt-1.1) > 1e-9 {
		t.Fatalf("doneAt = %v, want 1.1", doneAt)
	}
	if pn.PacketsSent() != 20 { // 10 packets × 2 hops
		t.Fatalf("packets = %d", pn.PacketsSent())
	}
}

func TestPacketNetPartialLastPacket(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	pn := NewPacketNet(e, topo, 100)
	var doneAt float64
	pn.Transfer(nodes[0], nodes[1], 150, func() { doneAt = e.Now() })
	e.Run()
	// Packets of 100 and 50 bytes: 0.1 + 0.05 = 0.15.
	if math.Abs(doneAt-0.15) > 1e-9 {
		t.Fatalf("doneAt = %v, want 0.15", doneAt)
	}
}

func TestPacketNetAgreesWithFlowOnQuietLink(t *testing.T) {
	// With no contention, both granularities should produce the same
	// transfer time up to one packet's worth of quantization.
	const bytes, bps = 1e6, 1e5
	eF := des.NewEngine()
	topoF, nodesF := line(2, bps, 0.02)
	netF := NewNetwork(eF, topoF)
	var tF float64
	netF.Transfer(nodesF[0], nodesF[1], bytes, func() { tF = eF.Now() })
	eF.Run()

	eP := des.NewEngine()
	topoP, nodesP := line(2, bps, 0.02)
	netP := NewPacketNet(eP, topoP, 1500)
	var tP float64
	netP.Transfer(nodesP[0], nodesP[1], bytes, func() { tP = eP.Now() })
	eP.Run()

	if math.Abs(tF-tP) > 1500/bps+1e-9 {
		t.Fatalf("flow %v vs packet %v differ by more than one packet time", tF, tP)
	}
}

func TestPacketNetBlockingSend(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0)
	pn := NewPacketNet(e, topo, 100)
	var at float64 = -1
	e.Spawn("s", func(p *des.Process) {
		pn.Send(p, nodes[0], nodes[1], 200)
		at = p.Now()
	})
	e.Run()
	if math.Abs(at-0.2) > 1e-9 {
		t.Fatalf("at = %v", at)
	}
}

func TestPacketNetZeroAndSelf(t *testing.T) {
	e := des.NewEngine()
	topo, nodes := line(2, 1000, 0.3)
	pn := NewPacketNet(e, topo, 100)
	count := 0
	pn.Transfer(nodes[0], nodes[1], 0, func() { count++ })
	pn.Transfer(nodes[0], nodes[0], 500, func() { count++ })
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	if pn.Completed() != 2 {
		t.Fatalf("completed = %d", pn.Completed())
	}
}

func TestTransferPanicsOnBadInput(t *testing.T) {
	e := des.NewEngine()
	topo := NewTopology()
	a := topo.AddNode("a")
	b := topo.AddNode("b") // unreachable
	net := NewNetwork(e, topo)
	t.Run("unreachable", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		net.Transfer(a, b, 10, nil)
	})
	t.Run("negative bytes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		net.Transfer(a, a, -1, nil)
	})
	t.Run("bad mtu", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		NewPacketNet(e, topo, 0)
	})
}
