package netsim

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// PacketNet is the packet-level fabric: messages are segmented into
// MTU-sized packets that traverse the route hop by hop, store-and-
// forward, serializing on each link. It costs one event per packet
// per hop — the "time consuming operation that leads to better output
// results" of the paper's granularity axis — and exists both for
// fidelity studies and for the E7a flow-vs-packet ablation.
//
// Each directed link transmits one packet at a time (FIFO); a packet
// occupies the link for size/Bps seconds and then propagates for the
// link latency before contending for the next hop.
type PacketNet struct {
	e    *des.Engine
	topo *Topology

	// MTU is the maximum packet payload in bytes. Messages are split
	// into ceil(bytes/MTU) packets.
	MTU float64

	queues map[*Link]*linkQueue

	packetsSent uint64
	completed   uint64
}

type linkQueue struct {
	busy    bool
	waiting []*packet
}

type packet struct {
	size  float64
	route []*Link
	hop   int
	msg   *message
}

type message struct {
	packetsLeft int
	done        func()
}

// NewPacketNet creates a packet-level fabric with the given MTU.
func NewPacketNet(e *des.Engine, topo *Topology, mtu float64) *PacketNet {
	if mtu <= 0 {
		panic(fmt.Sprintf("netsim: NewPacketNet with MTU %v", mtu))
	}
	return &PacketNet{e: e, topo: topo, MTU: mtu, queues: make(map[*Link]*linkQueue)}
}

// Topo implements Fabric.
func (pn *PacketNet) Topo() *Topology { return pn.topo }

// PacketsSent returns the cumulative number of packet transmissions
// (per hop).
func (pn *PacketNet) PacketsSent() uint64 { return pn.packetsSent }

// Completed returns the number of finished messages.
func (pn *PacketNet) Completed() uint64 { return pn.completed }

// Transfer implements Fabric.
func (pn *PacketNet) Transfer(src, dst *Node, bytes float64, done func()) {
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		panic(fmt.Sprintf("netsim: Transfer of %v bytes", bytes))
	}
	route := pn.topo.Route(src, dst)
	if route == nil {
		panic(fmt.Sprintf("netsim: no route %s -> %s", src.Name, dst.Name))
	}
	if len(route) == 0 || bytes == 0 {
		lat := 0.0
		for _, l := range route {
			lat += l.Latency
		}
		pn.e.ScheduleNamed("pnet:local", lat, func() {
			pn.completed++
			if done != nil {
				done()
			}
		})
		return
	}
	npkts := int(math.Ceil(bytes / pn.MTU))
	msg := &message{packetsLeft: npkts, done: done}
	rest := bytes
	for i := 0; i < npkts; i++ {
		size := pn.MTU
		if size > rest {
			size = rest
		}
		rest -= size
		pkt := &packet{size: size, route: route, msg: msg}
		pn.enqueue(pkt)
	}
}

// Send implements Fabric.
func (pn *PacketNet) Send(p *des.Process, src, dst *Node, bytes float64) {
	finished := false
	pn.Transfer(src, dst, bytes, func() {
		finished = true
		p.Activate()
	})
	for !finished {
		p.Passivate()
	}
}

func (pn *PacketNet) queueFor(l *Link) *linkQueue {
	q, ok := pn.queues[l]
	if !ok {
		q = &linkQueue{}
		pn.queues[l] = q
	}
	return q
}

// enqueue places the packet on its current hop's link queue.
func (pn *PacketNet) enqueue(pkt *packet) {
	link := pkt.route[pkt.hop]
	q := pn.queueFor(link)
	if q.busy {
		q.waiting = append(q.waiting, pkt)
		return
	}
	pn.transmit(link, q, pkt)
}

// transmit occupies the link for the serialization time, then after
// the propagation delay either forwards the packet or completes it.
func (pn *PacketNet) transmit(link *Link, q *linkQueue, pkt *packet) {
	q.busy = true
	pn.packetsSent++
	txTime := pkt.size / link.usable()
	pn.e.ScheduleNamed("pnet:tx", txTime, func() {
		link.bytesCarried += pkt.size
		// Link is free for the next queued packet.
		if len(q.waiting) > 0 {
			next := q.waiting[0]
			q.waiting = q.waiting[1:]
			pn.transmit(link, q, next)
		} else {
			q.busy = false
		}
		// Meanwhile this packet propagates.
		pn.e.ScheduleNamed("pnet:prop", link.Latency, func() {
			pkt.hop++
			if pkt.hop < len(pkt.route) {
				pn.enqueue(pkt)
				return
			}
			pkt.msg.packetsLeft--
			if pkt.msg.packetsLeft == 0 {
				pn.completed++
				if pkt.msg.done != nil {
					pkt.msg.done()
				}
			}
		})
	})
}

var _ Fabric = (*PacketNet)(nil)
