package p2p

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// overlay builds an n-peer ring over a fully usable P2P topology.
func overlay(e *des.Engine, n int, bits uint) (*Ring, *netsim.Network) {
	g := topology.P2PRing(e, n, topology.SiteSpec{}, 10e6, 0.001)
	net := netsim.NewNetwork(e, g.Topo)
	r := NewRing(e, net, g.Sites, bits)
	return r, net
}

func TestOwnerIsSuccessorOfKeyHash(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 16, 16)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%03d", i)
		owner := r.Owner(key)
		h := r.hash64(key)
		// No peer lies strictly between the hash and the owner
		// (clockwise).
		for _, p := range r.Peers() {
			if p == owner {
				continue
			}
			if r.distance(h, p.ID) < r.distance(h, owner.ID) {
				t.Fatalf("peer %d closer to key than owner %d", p.ID, owner.ID)
			}
		}
	}
}

func TestLookupFindsOwnerFromEveryPeer(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 20, 16)
	key := "the-data"
	want := r.Owner(key)
	for _, from := range r.Peers() {
		from := from
		e.Spawn("lookup", func(p *des.Process) {
			got, hops := r.Lookup(p, from, key)
			if got != want {
				t.Errorf("from %d: got owner %d, want %d", from.ID, got.ID, want.ID)
			}
			if from == want && hops != 0 {
				t.Errorf("self-lookup took %d hops", hops)
			}
		})
	}
	e.Run()
}

func TestLookupHopsLogarithmic(t *testing.T) {
	e := des.NewEngine()
	const n = 64
	r, _ := overlay(e, n, 20)
	e.Spawn("driver", func(p *des.Process) {
		for i := 0; i < 300; i++ {
			from := r.Peers()[i%n]
			r.Lookup(p, from, fmt.Sprintf("k%04d", i))
		}
	})
	e.Run()
	mean := r.MeanHops()
	limit := 2 * math.Log2(n)
	if mean > limit {
		t.Fatalf("mean hops %v exceeds 2·log2(n) = %v", mean, limit)
	}
	if mean == 0 {
		t.Fatal("no hops recorded at all")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 12, 16)
	e.Spawn("client", func(p *des.Process) {
		from := r.Peers()[3]
		r.Put(p, from, "alpha", []byte("payload-a"))
		r.Put(p, from, "beta", []byte("payload-b"))
		other := r.Peers()[9]
		if got := string(r.Get(p, other, "alpha")); got != "payload-a" {
			t.Errorf("Get alpha = %q", got)
		}
		if got := r.Get(p, other, "missing"); got != nil {
			t.Errorf("Get missing = %v", got)
		}
	})
	e.Run()
	if e.Now() <= 0 {
		t.Fatal("no network time elapsed — hops were free?")
	}
}

func TestLeaveHandsOverKeysAndKeepsLookupsCorrect(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 10, 16)
	key := "survivor"
	var owner *Peer
	e.Spawn("phase1", func(p *des.Process) {
		owner, _ = r.Lookup(p, r.Peers()[0], key)
		r.Put(p, r.Peers()[0], key, []byte("v"))
	})
	e.Run()
	r.Leave(owner)
	e2ndPhase := false
	e.Spawn("phase2", func(p *des.Process) {
		newOwner, _ := r.Lookup(p, r.Peers()[0], key)
		if newOwner == owner {
			t.Error("lookup still routes to departed peer")
		}
		if got := string(r.Get(p, r.Peers()[0], key)); got != "v" {
			t.Errorf("key lost on leave: %q", got)
		}
		e2ndPhase = true
	})
	e.Run()
	if !e2ndPhase {
		t.Fatal("phase2 did not run")
	}
}

func TestLeaveValidation(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 2, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic shrinking below 2")
		}
	}()
	r.Leave(r.Peers()[0])
}

func TestNewRingValidation(t *testing.T) {
	e := des.NewEngine()
	g := topology.P2PRing(e, 4, topology.SiteSpec{}, 1e6, 0.001)
	net := netsim.NewNetwork(e, g.Topo)
	for name, fn := range map[string]func(){
		"one site": func() { NewRing(e, net, g.Sites[:1], 16) },
		"bad bits": func() { NewRing(e, net, g.Sites, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuickLookupAlwaysOwner(t *testing.T) {
	f := func(seed uint64, keyRaw uint16, fromRaw uint8) bool {
		e := des.NewEngine(des.WithSeed(seed))
		r, _ := overlay(e, 12, 16)
		key := fmt.Sprintf("key-%d", keyRaw)
		from := r.Peers()[int(fromRaw)%12]
		want := r.Owner(key)
		ok := true
		e.Spawn("q", func(p *des.Process) {
			got, hops := r.Lookup(p, from, key)
			ok = got == want && hops <= 12
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGossipFullCoverage(t *testing.T) {
	e := des.NewEngine(des.WithSeed(3))
	r, _ := overlay(e, 32, 16)
	g := NewGossip(r, e.Stream("gossip"), 2, 1.0)
	rounds := g.Run(r.Peers()[0], 100)
	if rounds >= 100 {
		t.Fatalf("gossip did not converge: %d rounds", rounds)
	}
	// Expected O(log n) rounds; allow generous slack.
	if rounds > 25 {
		t.Fatalf("rounds = %d, want O(log 32)", rounds)
	}
	if g.Messages == 0 || g.Coverage.Len() < 2 {
		t.Fatal("no messages or coverage curve")
	}
	last := g.Coverage.Y[g.Coverage.Len()-1]
	if last != 1 {
		t.Fatalf("final coverage = %v", last)
	}
}

func TestGossipDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		e := des.NewEngine(des.WithSeed(3))
		r, _ := overlay(e, 24, 16)
		g := NewGossip(r, e.Stream("gossip"), 2, 1.0)
		rounds := g.Run(r.Peers()[0], 100)
		return rounds, g.Messages
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 || m1 != m2 {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", r1, m1, r2, m2)
	}
}

func TestGossipValidation(t *testing.T) {
	e := des.NewEngine()
	r, _ := overlay(e, 4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGossip(r, e.Stream("g"), 0, 1)
}
