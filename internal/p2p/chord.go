// Package p2p implements the peer-to-peer corner of the taxonomy's
// scope axis: a Chord-like structured overlay (consistent hashing,
// finger tables, O(log n) greedy routing) and an epidemic
// dissemination protocol, both running over the framework's network
// fabric so every hop pays real simulated latency and bandwidth.
//
// The paper groups "P2P networks" with Grids as the systems its
// simulators must cover; GridSim "can be used for modeling and
// simulation of application scheduling on ... clusters, Grids, and P2P
// networks". This package provides the overlay substrate those
// scenarios need.
package p2p

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Peer is one overlay node.
type Peer struct {
	ID   uint64 // position on the identifier ring
	Site *topology.Site

	fingers []*Peer // fingers[k] = successor(ID + 2^k)
	succ    *Peer

	// DHT storage for keys this peer owns.
	data map[string][]byte

	// Stats.
	LookupsServed uint64
	Forwards      uint64
}

// Ring is a static Chord-like overlay over grid sites.
type Ring struct {
	e      *des.Engine
	fabric netsim.Fabric
	peers  []*Peer // sorted by ID
	bits   uint    // identifier space is 2^bits

	// MsgBytes is the size of one routing message (default 256 B).
	MsgBytes float64

	// Stats.
	Lookups   uint64
	TotalHops uint64
}

// hash64 is FNV-1a, reduced to the ring's identifier space.
func (r *Ring) hash64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if r.bits >= 64 {
		return h
	}
	return h & ((1 << r.bits) - 1)
}

// NewRing builds the overlay over the given sites with a 2^bits
// identifier space. Peer IDs are derived from site names; a collision
// (astronomically unlikely at sane sizes) panics rather than silently
// merging peers.
func NewRing(e *des.Engine, fabric netsim.Fabric, sites []*topology.Site, bits uint) *Ring {
	if len(sites) < 2 || bits < 3 || bits > 64 {
		panic(fmt.Sprintf("p2p: NewRing(%d sites, %d bits)", len(sites), bits))
	}
	r := &Ring{e: e, fabric: fabric, bits: bits, MsgBytes: 256}
	seen := map[uint64]bool{}
	for _, s := range sites {
		id := r.hash64("peer:" + s.Name)
		if seen[id] {
			panic(fmt.Sprintf("p2p: ID collision for %q", s.Name))
		}
		seen[id] = true
		r.peers = append(r.peers, &Peer{ID: id, Site: s, data: make(map[string][]byte)})
	}
	sort.Slice(r.peers, func(i, j int) bool { return r.peers[i].ID < r.peers[j].ID })
	r.rebuild()
	return r
}

// rebuild recomputes successors and finger tables from the current
// peer set (static-topology simplification of Chord's stabilization).
func (r *Ring) rebuild() {
	n := len(r.peers)
	for i, p := range r.peers {
		p.succ = r.peers[(i+1)%n]
		p.fingers = p.fingers[:0]
		for k := uint(0); k < r.bits; k++ {
			target := (p.ID + (1 << k)) & r.mask()
			p.fingers = append(p.fingers, r.successor(target))
		}
	}
}

func (r *Ring) mask() uint64 {
	if r.bits >= 64 {
		return ^uint64(0)
	}
	return (1 << r.bits) - 1
}

// successor returns the first peer at or after id on the ring.
func (r *Ring) successor(id uint64) *Peer {
	i := sort.Search(len(r.peers), func(i int) bool { return r.peers[i].ID >= id })
	if i == len(r.peers) {
		i = 0
	}
	return r.peers[i]
}

// Peers returns the peers in ID order.
func (r *Ring) Peers() []*Peer { return r.peers }

// Owner returns the peer responsible for a key.
func (r *Ring) Owner(key string) *Peer { return r.successor(r.hash64(key)) }

// distance is the clockwise distance a→b on the ring.
func (r *Ring) distance(a, b uint64) uint64 { return (b - a) & r.mask() }

// route greedily forwards from `from` toward the key's owner using
// finger tables, charging the fabric for every hop, and returns the
// owner plus the hop count. Runs in process context.
func (r *Ring) route(p *des.Process, from *Peer, key string) (*Peer, int) {
	target := r.hash64(key)
	cur := from
	hops := 0
	for {
		if cur == r.successor(target) {
			return cur, hops
		}
		// Largest finger not overshooting the target (classic
		// closest-preceding-finger rule, on clockwise distance).
		next := cur.succ
		bestDist := r.distance(next.ID, target)
		for _, f := range cur.fingers {
			if f == cur {
				continue
			}
			// f must lie strictly within (cur, target]:
			if r.distance(cur.ID, f.ID) <= r.distance(cur.ID, target) {
				d := r.distance(f.ID, target)
				if d < bestDist {
					bestDist = d
					next = f
				}
			}
		}
		if next == cur {
			return cur, hops
		}
		r.fabric.Send(p, cur.Site.Net, next.Site.Net, r.MsgBytes)
		cur.Forwards++
		cur = next
		hops++
		if hops > len(r.peers) {
			panic("p2p: routing did not converge")
		}
	}
}

// Lookup resolves the peer owning key, starting at from, paying
// network time per hop. It returns the owner and hops taken.
func (r *Ring) Lookup(p *des.Process, from *Peer, key string) (*Peer, int) {
	owner, hops := r.route(p, from, key)
	owner.LookupsServed++
	r.Lookups++
	r.TotalHops += uint64(hops)
	return owner, hops
}

// Put stores a value at the key's owner (routing + value transfer).
func (r *Ring) Put(p *des.Process, from *Peer, key string, value []byte) {
	owner, _ := r.Lookup(p, from, key)
	if owner != from {
		r.fabric.Send(p, from.Site.Net, owner.Site.Net, float64(len(value)))
	}
	owner.data[key] = value
}

// Get retrieves a value, returning nil when absent. The value travels
// back from the owner to the requester.
func (r *Ring) Get(p *des.Process, from *Peer, key string) []byte {
	owner, _ := r.Lookup(p, from, key)
	v, ok := owner.data[key]
	if !ok {
		return nil
	}
	if owner != from {
		r.fabric.Send(p, owner.Site.Net, from.Site.Net, float64(len(v)))
	}
	return v
}

// Leave removes a peer: its keys hand over to its successor and all
// finger tables rebuild (the static-topology stand-in for Chord's
// stabilization rounds). Removing below 2 peers panics.
func (r *Ring) Leave(peer *Peer) {
	if len(r.peers) <= 2 {
		panic("p2p: ring cannot shrink below 2 peers")
	}
	idx := -1
	for i, p := range r.peers {
		if p == peer {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	heir := r.peers[(idx+1)%len(r.peers)]
	for k, v := range peer.data {
		heir.data[k] = v
	}
	peer.data = nil
	r.peers = append(r.peers[:idx], r.peers[idx+1:]...)
	r.rebuild()
}

// MeanHops returns the average hop count over all lookups so far.
func (r *Ring) MeanHops() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.TotalHops) / float64(r.Lookups)
}
