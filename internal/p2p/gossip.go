package p2p

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Gossip runs an epidemic push protocol over a peer set: each round,
// every infected peer pushes the rumor to Fanout uniformly random
// peers. It is the canonical unstructured-P2P dissemination model and
// completes the package's coverage of the taxonomy's P2P scope.
type Gossip struct {
	Fanout    int
	RoundTime float64
	MsgBytes  float64

	ring *Ring
	src  *rng.Source

	// Results, populated by Run.
	Rounds   int
	Messages uint64
	Coverage metrics.Series // fraction infected vs round
}

// NewGossip builds a push-gossip protocol over the ring's peers.
func NewGossip(ring *Ring, src *rng.Source, fanout int, roundTime float64) *Gossip {
	if fanout <= 0 || roundTime <= 0 {
		panic(fmt.Sprintf("p2p: NewGossip(fanout=%d, round=%v)", fanout, roundTime))
	}
	return &Gossip{
		Fanout: fanout, RoundTime: roundTime, MsgBytes: 1024,
		ring: ring, src: src,
	}
}

// Run disseminates a rumor from the origin peer until every peer is
// infected (or maxRounds passes), returning the number of rounds. One
// process per peer pushes each round; every push pays fabric time.
func (g *Gossip) Run(origin *Peer, maxRounds int) int {
	peers := g.ring.Peers()
	n := len(peers)
	infected := make(map[*Peer]bool, n)
	infected[origin] = true
	covered := 1
	e := g.ring.e
	g.Coverage = metrics.Series{Name: "coverage"}
	g.Coverage.Append(0, 1/float64(n))

	done := false
	for i := range peers {
		peer := peers[i]
		e.Spawn(fmt.Sprintf("gossip:%d", peer.ID), func(p *des.Process) {
			for round := 1; round <= maxRounds && !done; round++ {
				p.Hold(g.RoundTime)
				if !infected[peer] {
					continue
				}
				for f := 0; f < g.Fanout; f++ {
					target := peers[g.src.Intn(n)]
					if target == peer {
						continue
					}
					g.Messages++
					g.ring.fabric.Send(p, peer.Site.Net, target.Site.Net, g.MsgBytes)
					if !infected[target] {
						infected[target] = true
						covered++
						if covered == n {
							done = true
							g.Rounds = round
							g.Coverage.Append(float64(round), 1)
						}
					}
				}
			}
		})
	}
	// One observer samples coverage each round for the curve.
	e.Spawn("gossip:observer", func(p *des.Process) {
		for round := 1; round <= maxRounds && !done; round++ {
			p.Hold(g.RoundTime)
			g.Coverage.Append(float64(round), float64(covered)/float64(n))
		}
	})
	e.Run()
	if g.Rounds == 0 {
		g.Rounds = maxRounds
	}
	return g.Rounds
}
