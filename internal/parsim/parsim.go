// Package parsim implements parallel simulation execution: the
// "distributed" pole of the taxonomy's execution axis.
//
// The paper observes that "a pure serial simulation execution, which
// would make use of only a single processor, can not be a reality when
// addressing the problem of simulating large scale distributed
// systems" — modern engines must at least exploit every local
// processor — while fully distributed simulation "has not
// significantly impressed the general simulation community" (Fujimoto
// 1993) because of the synchronization cost. Both observations are
// measurable here.
//
// The model partitions a simulation into logical processes (LPs), each
// owning a private des.Engine. Cross-LP interactions carry a minimum
// delay — the lookahead — which makes the classic conservative
// synchronization of Chandy/Misra/Bryant applicable. The Federation
// executes LPs over a worker pool in lock-step lookahead windows (the
// synchronous/bounded-lag variant of conservative synchronization):
// within a window every LP may run independently because no message
// sent inside the window can affect the same window. Results are
// bit-identical for any worker count, including 1, which is what lets
// experiment E5 attribute speedups to parallelism alone.
package parsim

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/des"
	"repro/internal/eventq"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Message is a cross-LP event payload.
type Message struct {
	// Time is the absolute simulation time of delivery.
	Time float64
	// From is the sending LP index.
	From int
	// Data is the model payload.
	Data any
}

// LP is one logical process: a partition of the model with a private
// engine and clock.
type LP struct {
	Index int
	E     *des.Engine

	fed *Federation
	// OnMessage handles remote messages; it runs in the LP's engine
	// context at Message.Time. It must be set before Run.
	OnMessage func(m Message)

	// outbox[target] buffers messages produced this window.
	outbox [][]Message
	sent   uint64
	recv   uint64
}

// Send schedules a message for the target LP at delay >= the
// federation lookahead from the LP's current local time. It panics on
// smaller delays: they would violate the synchronization window.
func (lp *LP) Send(target int, delay float64, data any) {
	if delay < lp.fed.lookahead {
		panic(fmt.Sprintf("parsim: Send with delay %v below lookahead %v", delay, lp.fed.lookahead))
	}
	if target < 0 || target >= len(lp.fed.lps) {
		panic(fmt.Sprintf("parsim: Send to unknown LP %d", target))
	}
	lp.outbox[target] = append(lp.outbox[target], Message{
		Time: lp.E.Now() + delay,
		From: lp.Index,
		Data: data,
	})
	lp.sent++
}

// Sent returns the number of cross-LP messages this LP has produced.
func (lp *LP) Sent() uint64 { return lp.sent }

// Received returns the number of cross-LP messages delivered to it.
func (lp *LP) Received() uint64 { return lp.recv }

// Federation is a set of LPs advancing in conservative lock-step
// windows over a persistent pool of workers.
//
// The pool (internal/pool, extracted from the original parsim
// implementation so the distributed worker can reuse it) is created
// once per Run and reused for every window: the coordinator publishes
// the window end, releases one token per worker, workers claim LPs off
// an atomic cursor, and a counting barrier closes the window.
// Rebuilding the goroutines and channels per window — the naive
// translation of "fork workers for each window" — costs a pool
// construction and teardown every lookahead interval, which is exactly
// the execution-context churn the paper's engine guidance warns about;
// with fine lookaheads the simulation executes thousands of windows
// per second and the churn dominates.
type Federation struct {
	lps       []*LP
	lookahead float64
	workers   int

	windows   uint64
	idleSkips atomic.Uint64

	// clock is the end of the last completed window: Run continues from
	// here, and Checkpoint records it so a restored federation resumes
	// at the exact window boundary.
	clock float64

	// msgOps, when non-nil, holds the per-LP registered op used to
	// deliver cross-LP messages serializably (see EnableCheckpointing);
	// model is the attached Checkpointable state rider.
	msgOps []des.Op
	model  checkpoint.Checkpointable

	// per-Run worker-pool state: windowEnd is published to the pool
	// workers by the token barrier inside pl.Run.
	windowEnd float64
	pl        *pool.Pool

	// observability (EnableObservability); every structure below is
	// single-writer: per-LP recorders are written only by whichever
	// worker holds the LP inside a window (the token barrier orders
	// cross-window handoffs), per-worker recorders/histograms only by
	// their worker, and windowWall only by the coordinator.
	obsOn       bool
	lpRecs      []*obs.Recorder
	lpMetrics   []*obs.Metrics
	workerRecs  []*obs.Recorder
	barrierWait []obs.Histogram // per worker: wall ns blocked between windows
	busy        []obs.Histogram // per worker: wall ns executing LPs per window
	windowWall  obs.Histogram   // coordinator: wall ns per window incl. delivery
}

// NewFederation creates n LPs with the given lookahead (the minimum
// cross-LP delay, > 0) executed by the given number of parallel
// workers (>= 1). Each LP's engine derives its seed from the base
// seed and the LP index, so results are reproducible and independent
// of the worker count.
func NewFederation(n int, lookahead float64, workers int, seed uint64) *Federation {
	return NewFederationWithQueue(n, lookahead, workers, seed, eventq.KindHeap)
}

// NewFederationWithQueue is NewFederation with an explicit
// future-event-list kind for every LP engine. Results are independent
// of the kind (dequeue order is total), so it is exercised by the
// determinism tests and benchmark sweeps.
func NewFederationWithQueue(n int, lookahead float64, workers int, seed uint64, kind eventq.Kind) *Federation {
	if n <= 0 || lookahead <= 0 || workers <= 0 {
		panic(fmt.Sprintf("parsim: NewFederation(n=%d, lookahead=%v, workers=%d)", n, lookahead, workers))
	}
	f := &Federation{lookahead: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		lp := &LP{
			Index:  i,
			E:      des.NewEngine(des.WithSeed(seed+uint64(i)*0x9e3779b9), des.WithQueue(kind)),
			fed:    f,
			outbox: make([][]Message, n),
		}
		f.lps = append(f.lps, lp)
	}
	return f
}

// LPs returns the number of logical processes.
func (f *Federation) LPs() int { return len(f.lps) }

// LP returns the i-th logical process.
func (f *Federation) LP(i int) *LP { return f.lps[i] }

// Lookahead returns the federation lookahead.
func (f *Federation) Lookahead() float64 { return f.lookahead }

// Windows returns the number of synchronization windows executed.
func (f *Federation) Windows() uint64 { return f.windows }

// IdleSkips returns the number of (LP, window) pairs that were skipped
// because the LP had no event inside the window — work the persistent
// pool avoids dispatching entirely.
func (f *Federation) IdleSkips() uint64 { return f.idleSkips.Load() }

// poolWorkers returns the number of workers the pool actually uses
// (extra workers beyond the LP count would only contend on the cursor).
func (f *Federation) poolWorkers() int {
	if f.workers > len(f.lps) {
		return len(f.lps)
	}
	return f.workers
}

// EnableObservability attaches a trace recorder (spanCap spans, ring)
// and latency histograms to every LP engine, plus a recorder and
// barrier-wait/busy histograms to every pool worker. It must be called
// before Run; calling it with tracing already enabled resets the
// attachments. Observability never perturbs simulation results — the
// determinism tests run with it on — it only costs wall time.
func (f *Federation) EnableObservability(spanCap int) {
	workers := f.poolWorkers()
	f.obsOn = true
	f.lpRecs = make([]*obs.Recorder, len(f.lps))
	f.lpMetrics = make([]*obs.Metrics, len(f.lps))
	for i, lp := range f.lps {
		f.lpRecs[i] = obs.NewRecorder(spanCap)
		f.lpMetrics[i] = &obs.Metrics{}
		lp.E.SetObserver(des.Observer{Recorder: f.lpRecs[i], Metrics: f.lpMetrics[i], Track: i})
	}
	f.workerRecs = make([]*obs.Recorder, workers)
	for w := range f.workerRecs {
		f.workerRecs[w] = obs.NewRecorder(spanCap)
	}
	f.barrierWait = make([]obs.Histogram, workers)
	f.busy = make([]obs.Histogram, workers)
	f.windowWall.Reset()
}

// Snapshot is a point-in-time view of federation-level runtime
// metrics, taken between Run calls.
type Snapshot struct {
	// Windows and IdleSkips mirror the federation counters.
	Windows   uint64
	IdleSkips uint64
	// LPs holds each LP engine's Stats (with latency histograms when
	// observability is on).
	LPs []des.Stats
	// BarrierWait aggregates, across workers, the wall nanoseconds a
	// worker spent blocked between finishing one window and starting
	// the next — the synchronization cost of conservative lock-step.
	BarrierWait *obs.Histogram
	// WindowWall is the coordinator's wall nanoseconds per window,
	// including message delivery.
	WindowWall *obs.Histogram
	// Utilization is, per worker, busy wall time divided by total
	// window wall time — the load-balance profile of the run.
	Utilization []float64
}

// Snapshot captures the current federation metrics. The histograms are
// merged copies; mutating them does not affect the live run. Must not
// be called while Run is executing.
func (f *Federation) Snapshot() Snapshot {
	s := Snapshot{Windows: f.windows, IdleSkips: f.idleSkips.Load()}
	s.LPs = make([]des.Stats, len(f.lps))
	for i, lp := range f.lps {
		s.LPs[i] = lp.E.Stats()
	}
	if !f.obsOn {
		return s
	}
	bw := &obs.Histogram{}
	for w := range f.barrierWait {
		bw.Merge(&f.barrierWait[w])
	}
	s.BarrierWait = bw
	ww := &obs.Histogram{}
	ww.Merge(&f.windowWall)
	s.WindowWall = ww
	total := f.windowWall.Sum()
	s.Utilization = make([]float64, len(f.busy))
	for w := range f.busy {
		if total > 0 {
			s.Utilization[w] = float64(f.busy[w].Sum()) / float64(total)
		}
	}
	return s
}

// TraceTracks returns one obs.Track per LP and per pool worker, ready
// for obs.WriteChromeTrace: LP tracks carry event spans and
// schedule/cancel marks, worker tracks carry barrier-wait and
// window-busy spans. Nil when observability is off.
func (f *Federation) TraceTracks() []obs.Track {
	if !f.obsOn {
		return nil
	}
	var tracks []obs.Track
	for i, r := range f.lpRecs {
		tracks = append(tracks, obs.Track{Name: fmt.Sprintf("lp-%d", i), TID: i, Rec: r})
	}
	for w, r := range f.workerRecs {
		// Worker tids live in a disjoint range above the LP tids.
		tracks = append(tracks, obs.Track{Name: fmt.Sprintf("worker-%d", w), TID: 1000 + w, Rec: r})
	}
	return tracks
}

// Run advances every LP to the horizon in lookahead-sized windows.
// Within a window LPs execute concurrently on the worker pool; at the
// barrier, buffered cross-LP messages are delivered (in deterministic
// LP-index and send order) into the target engines.
//
// The worker goroutines are started once here and reused for every
// window; they exit when Run returns. Run may be called again to
// continue past a previous horizon.
func (f *Federation) Run(horizon float64) {
	if horizon <= f.clock || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		panic(fmt.Sprintf("parsim: Run(%v) with window clock at %v", horizon, f.clock))
	}
	for _, lp := range f.lps {
		if lp.OnMessage == nil {
			panic(fmt.Sprintf("parsim: LP %d has no OnMessage handler", lp.Index))
		}
	}
	f.pl = pool.New(f.poolWorkers(), f.runLP)
	if f.obsOn {
		f.pl.SetObserve(f.observePhases)
	}
	defer func() {
		f.pl.Close() // stop signal: workers drain and exit
		f.pl = nil
	}()
	for windowEnd := f.clock + f.lookahead; ; windowEnd += f.lookahead {
		if windowEnd > horizon {
			windowEnd = horizon
		}
		f.windows++
		var wallStart int64
		if f.obsOn {
			wallStart = obs.Now()
		}
		f.runWindow(windowEnd)
		f.deliver()
		if f.obsOn {
			f.windowWall.Observe(obs.Now() - wallStart)
		}
		f.clock = windowEnd
		if windowEnd >= horizon {
			return
		}
	}
}

// runWindow executes every LP up to windowEnd on the persistent
// worker pool (inline on the calling goroutine when the pool has a
// single worker). LPs whose next event lies beyond the window are
// skipped without entering their engine loop.
func (f *Federation) runWindow(windowEnd float64) {
	// windowEnd is a plain field: the pool's token barrier publishes it
	// to every worker before any runLP call of this window.
	f.windowEnd = windowEnd
	f.pl.Run(len(f.lps))
}

// runLP is the pool body: execute one LP through the current window.
// An LP with nothing due this window never enters its engine loop.
// PeekTime may pop tombstones, but this pool worker is the only one
// touching the LP during the window.
func (f *Federation) runLP(_, i int) {
	lp := f.lps[i]
	if lp.E.PeekTime() > f.windowEnd {
		f.idleSkips.Add(1)
		return
	}
	lp.E.RunUntil(f.windowEnd)
}

// observePhases is the pool's per-worker phase hook. The wait phase —
// from reporting one window's done-token until the next start-token
// arrives (the window-close barrier, message delivery, and the release
// of the next window) — is the measurable synchronization cost the
// paper's C4 discussion attributes to conservative execution. Inline
// mode has no barrier (waitStart == busyStart) and records only the
// busy phase, preserving the single-worker baseline's histograms.
func (f *Federation) observePhases(w int, waitStart, busyStart, busyEnd int64) {
	if waitStart != busyStart {
		wait := busyStart - waitStart
		f.barrierWait[w].Observe(wait)
		f.workerRecs[w].Record(obs.Span{
			Kind: obs.KindBarrierWait, Track: int32(w), Wall: waitStart, Dur: wait,
		})
	}
	busy := busyEnd - busyStart
	f.busy[w].Observe(busy)
	f.workerRecs[w].Record(obs.Span{
		Kind: obs.KindWindowBusy, Track: int32(w), Wall: busyStart, Dur: busy,
		Time: f.windowEnd,
	})
}

// deliver flushes every outbox into the target engines, sequentially
// and in deterministic order. Outboxes are truncated, not released:
// the backing arrays are reused by the next window's sends.
func (f *Federation) deliver() {
	for _, src := range f.lps {
		for target := range src.outbox {
			msgs := src.outbox[target]
			if len(msgs) == 0 {
				continue
			}
			src.outbox[target] = msgs[:0]
			dst := f.lps[target]
			for _, m := range msgs {
				m := m
				dst.recv++
				if f.msgOps != nil {
					// Checkpointable delivery: the pending event carries
					// the encoded message instead of a closure, so it can
					// ride in a snapshot (see checkpoint.go).
					dst.E.AtOp(m.Time, f.msgOps[target], encodeMessage(&m))
				} else {
					dst.E.At(m.Time, func() { dst.OnMessage(m) })
				}
			}
		}
	}
}
