// Package parsim implements parallel simulation execution: the
// "distributed" pole of the taxonomy's execution axis.
//
// The paper observes that "a pure serial simulation execution, which
// would make use of only a single processor, can not be a reality when
// addressing the problem of simulating large scale distributed
// systems" — modern engines must at least exploit every local
// processor — while fully distributed simulation "has not
// significantly impressed the general simulation community" (Fujimoto
// 1993) because of the synchronization cost. Both observations are
// measurable here.
//
// The model partitions a simulation into logical processes (LPs), each
// owning a private des.Engine. Cross-LP interactions carry a minimum
// delay — the lookahead — which makes the classic conservative
// synchronization of Chandy/Misra/Bryant applicable. The Federation
// executes LPs over a worker pool in lock-step lookahead windows (the
// synchronous/bounded-lag variant of conservative synchronization):
// within a window every LP may run independently because no message
// sent inside the window can affect the same window. Results are
// bit-identical for any worker count, including 1, which is what lets
// experiment E5 attribute speedups to parallelism alone.
package parsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/des"
)

// Message is a cross-LP event payload.
type Message struct {
	// Time is the absolute simulation time of delivery.
	Time float64
	// From is the sending LP index.
	From int
	// Data is the model payload.
	Data any
}

// LP is one logical process: a partition of the model with a private
// engine and clock.
type LP struct {
	Index int
	E     *des.Engine

	fed *Federation
	// OnMessage handles remote messages; it runs in the LP's engine
	// context at Message.Time. It must be set before Run.
	OnMessage func(m Message)

	// outbox[target] buffers messages produced this window.
	outbox [][]Message
	sent   uint64
	recv   uint64
}

// Send schedules a message for the target LP at delay >= the
// federation lookahead from the LP's current local time. It panics on
// smaller delays: they would violate the synchronization window.
func (lp *LP) Send(target int, delay float64, data any) {
	if delay < lp.fed.lookahead {
		panic(fmt.Sprintf("parsim: Send with delay %v below lookahead %v", delay, lp.fed.lookahead))
	}
	if target < 0 || target >= len(lp.fed.lps) {
		panic(fmt.Sprintf("parsim: Send to unknown LP %d", target))
	}
	lp.outbox[target] = append(lp.outbox[target], Message{
		Time: lp.E.Now() + delay,
		From: lp.Index,
		Data: data,
	})
	lp.sent++
}

// Sent returns the number of cross-LP messages this LP has produced.
func (lp *LP) Sent() uint64 { return lp.sent }

// Received returns the number of cross-LP messages delivered to it.
func (lp *LP) Received() uint64 { return lp.recv }

// Federation is a set of LPs advancing in conservative lock-step
// windows over a pool of workers.
type Federation struct {
	lps       []*LP
	lookahead float64
	workers   int

	windows uint64
}

// NewFederation creates n LPs with the given lookahead (the minimum
// cross-LP delay, > 0) executed by the given number of parallel
// workers (>= 1). Each LP's engine derives its seed from the base
// seed and the LP index, so results are reproducible and independent
// of the worker count.
func NewFederation(n int, lookahead float64, workers int, seed uint64) *Federation {
	if n <= 0 || lookahead <= 0 || workers <= 0 {
		panic(fmt.Sprintf("parsim: NewFederation(n=%d, lookahead=%v, workers=%d)", n, lookahead, workers))
	}
	f := &Federation{lookahead: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		lp := &LP{
			Index:  i,
			E:      des.NewEngine(des.WithSeed(seed + uint64(i)*0x9e3779b9)),
			fed:    f,
			outbox: make([][]Message, n),
		}
		f.lps = append(f.lps, lp)
	}
	return f
}

// LPs returns the number of logical processes.
func (f *Federation) LPs() int { return len(f.lps) }

// LP returns the i-th logical process.
func (f *Federation) LP(i int) *LP { return f.lps[i] }

// Lookahead returns the federation lookahead.
func (f *Federation) Lookahead() float64 { return f.lookahead }

// Windows returns the number of synchronization windows executed.
func (f *Federation) Windows() uint64 { return f.windows }

// Run advances every LP to the horizon in lookahead-sized windows.
// Within a window LPs execute concurrently on the worker pool; at the
// barrier, buffered cross-LP messages are delivered (in deterministic
// LP-index and send order) into the target engines.
func (f *Federation) Run(horizon float64) {
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		panic(fmt.Sprintf("parsim: Run(%v)", horizon))
	}
	for _, lp := range f.lps {
		if lp.OnMessage == nil {
			panic(fmt.Sprintf("parsim: LP %d has no OnMessage handler", lp.Index))
		}
	}
	nextWindow := f.lookahead
	for windowEnd := nextWindow; ; windowEnd += f.lookahead {
		if windowEnd > horizon {
			windowEnd = horizon
		}
		f.windows++
		f.runWindow(windowEnd)
		f.deliver()
		if windowEnd >= horizon {
			return
		}
	}
}

// runWindow executes every LP up to windowEnd using the worker pool.
func (f *Federation) runWindow(windowEnd float64) {
	if f.workers == 1 {
		for _, lp := range f.lps {
			lp.E.RunUntil(windowEnd)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan *LP)
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lp := range work {
				lp.E.RunUntil(windowEnd)
			}
		}()
	}
	for _, lp := range f.lps {
		work <- lp
	}
	close(work)
	wg.Wait()
}

// deliver flushes every outbox into the target engines, sequentially
// and in deterministic order.
func (f *Federation) deliver() {
	for _, src := range f.lps {
		for target := range src.outbox {
			msgs := src.outbox[target]
			if len(msgs) == 0 {
				continue
			}
			src.outbox[target] = nil
			dst := f.lps[target]
			for _, m := range msgs {
				m := m
				dst.recv++
				dst.E.At(m.Time, func() { dst.OnMessage(m) })
			}
		}
	}
}
