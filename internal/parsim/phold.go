package parsim

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/des"
)

// PHOLD is the standard synthetic benchmark of the parallel-DES
// literature (Fujimoto's "parallel hold" model): a fixed population of
// jobs circulates among LPs; each job event burns some model work,
// then reschedules itself either locally or on a remote LP after an
// exponential delay bounded below by the lookahead.
//
// It is used by experiment E5 to measure the speedup of distributed
// execution and its sensitivity to lookahead and remote-message
// probability — the exact trade-off the paper's Section 3 discusses.
type PHOLD struct {
	Fed *Federation
	// RemoteProb is the probability a job hops to another LP.
	RemoteProb float64
	// MeanDelay is the mean event spacing (>= lookahead enforced at
	// draw time).
	MeanDelay float64
	// Work is synthetic per-event computation (iterations of a
	// floating-point loop) emulating model complexity.
	Work int
	// SkewHot/SkewFactor introduce a hot spot: LPs with index <
	// SkewHot draw their event spacing from MeanDelay/SkewFactor. This
	// is the single-process reference for skewed distributed runs
	// (distsim.InstallPHOLDSkew consumes draws identically).
	SkewHot    int
	SkewFactor float64

	events []uint64  // per-LP processed event counts
	sinks  []float64 // per-LP accumulator keeping the work loop live
	hopOps []des.Op  // per-LP registered hop op ("phold.hop")
}

// NewPHOLD builds the benchmark over a fresh federation with the
// canonical mean event spacing of 4 lookaheads. The model is
// checkpointable: jobs are scheduled as registered ops and the per-LP
// counters ride in federation snapshots, so a PHOLD run can be
// checkpointed at any window barrier and resumed bit-identically.
func NewPHOLD(lps, workers int, lookahead float64, jobsPerLP int, remoteProb float64, work int, seed uint64) *PHOLD {
	return NewPHOLDFactor(lps, workers, lookahead, jobsPerLP, remoteProb, work, seed, 4)
}

// NewPHOLDFactor is NewPHOLD with an explicit delay factor: the mean
// event spacing is delayFactor lookaheads. Large factors make the
// traffic sparse — most lookahead windows hold no event at all — which
// is the regime the distributed engine's window skipping targets;
// distsim.InstallPHOLDFactor consumes random draws identically, so a
// sparse distributed run remains bit-comparable to this single-process
// reference.
func NewPHOLDFactor(lps, workers int, lookahead float64, jobsPerLP int, remoteProb float64, work int, seed uint64, delayFactor float64) *PHOLD {
	return NewPHOLDSkew(lps, workers, lookahead, jobsPerLP, remoteProb, work, seed, delayFactor, 0, 1)
}

// NewPHOLDSkew is NewPHOLDFactor with a hot spot: LPs with index <
// skewHot run skewFactor times as often (their mean event spacing is
// divided by skewFactor). It is the bit-identical reference for
// skewed distributed runs, with or without live rebalancing.
func NewPHOLDSkew(lps, workers int, lookahead float64, jobsPerLP int, remoteProb float64, work int, seed uint64, delayFactor float64, skewHot int, skewFactor float64) *PHOLD {
	if delayFactor <= 0 {
		panic(fmt.Sprintf("parsim: NewPHOLDFactor with delay factor %v", delayFactor))
	}
	fed := NewFederation(lps, lookahead, workers, seed)
	ph := &PHOLD{
		Fed:        fed,
		RemoteProb: remoteProb,
		MeanDelay:  delayFactor * lookahead,
		Work:       work,
		SkewHot:    skewHot,
		SkewFactor: skewFactor,
		events:     make([]uint64, lps),
		sinks:      make([]float64, lps),
		hopOps:     make([]des.Op, lps),
	}
	fed.EnableCheckpointing()
	fed.SetModel(ph)
	for i := 0; i < lps; i++ {
		lp := fed.LP(i)
		lp.OnMessage = func(m Message) { ph.hop(lp) }
		ph.hopOps[i] = lp.E.RegisterOp("phold.hop", func([]byte) { ph.hop(lp) })
		for j := 0; j < jobsPerLP; j++ {
			lp.E.ScheduleOp(ph.drawDelay(lp), ph.hopOps[i], nil)
		}
	}
	return ph
}

// lpMean is the LP's mean event spacing: hot LPs run SkewFactor times
// as often.
func (ph *PHOLD) lpMean(index int) float64 {
	if index < ph.SkewHot && ph.SkewFactor > 1 {
		return ph.MeanDelay / ph.SkewFactor
	}
	return ph.MeanDelay
}

// drawDelay samples the next event spacing, clamped to the lookahead.
func (ph *PHOLD) drawDelay(lp *LP) float64 {
	d := lp.E.Rand().Exp(1 / ph.lpMean(lp.Index))
	if d < ph.Fed.Lookahead() {
		d = ph.Fed.Lookahead()
	}
	return d
}

// hop processes one job event on the LP and reschedules the job.
func (ph *PHOLD) hop(lp *LP) {
	ph.events[lp.Index]++
	// Synthetic model work; kept observable so the compiler cannot
	// elide it.
	acc := 1.0001
	for i := 0; i < ph.Work; i++ {
		acc = math.Sqrt(acc*1.7 + float64(i&7))
	}
	ph.sinks[lp.Index] += acc
	delay := ph.drawDelay(lp)
	if len(ph.events) > 1 && lp.E.Rand().Bernoulli(ph.RemoteProb) {
		target := lp.E.Rand().Intn(len(ph.events) - 1)
		if target >= lp.Index {
			target++
		}
		lp.Send(target, delay, nil)
		return
	}
	lp.E.ScheduleOp(delay, ph.hopOps[lp.Index], nil)
}

// MarshalState serializes the per-LP counters for federation
// snapshots; pending job events are carried by the engine snapshots.
func (ph *PHOLD) MarshalState() ([]byte, error) {
	var enc checkpoint.Enc
	enc.Int(len(ph.events))
	for _, n := range ph.events {
		enc.U64(n)
	}
	for _, s := range ph.sinks {
		enc.F64(s)
	}
	return enc.Bytes(), nil
}

// UnmarshalState restores the per-LP counters from a snapshot.
func (ph *PHOLD) UnmarshalState(data []byte) error {
	d := checkpoint.NewDec(data)
	n := d.Int()
	if n != len(ph.events) {
		return fmt.Errorf("parsim: PHOLD state has %d LPs, model has %d", n, len(ph.events))
	}
	for i := range ph.events {
		ph.events[i] = d.U64()
	}
	for i := range ph.sinks {
		ph.sinks[i] = d.F64()
	}
	return d.Err()
}

// Run executes the benchmark to the horizon and returns the total
// number of processed events.
func (ph *PHOLD) Run(horizon float64) uint64 {
	ph.Fed.Run(horizon)
	return ph.TotalEvents()
}

// TotalEvents returns processed events summed over LPs.
func (ph *PHOLD) TotalEvents() uint64 {
	var sum uint64
	for _, n := range ph.events {
		sum += n
	}
	return sum
}

// PerLPEvents returns a copy of the per-LP event counts.
func (ph *PHOLD) PerLPEvents() []uint64 {
	out := make([]uint64, len(ph.events))
	copy(out, ph.events)
	return out
}
