package parsim

import (
	"fmt"
	"testing"
)

// BenchmarkFederationWindowOverhead isolates the per-window cost of
// the synchronization machinery: a lookahead 1000x finer than the mean
// event spacing forces one barrier per 0.01 time units while each LP
// only has an event every ~10 units, so almost every (LP, window) pair
// is idle. This is the regime where rebuilding the worker pool and
// channel per window dominated; the persistent pool plus the
// PeekTime skip makes a window a near-noop.
func BenchmarkFederationWindowOverhead(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f := NewFederation(8, 0.01, w, 7)
				for j := 0; j < f.LPs(); j++ {
					lp := f.LP(j)
					src := lp.E.Stream("sparse")
					lp.OnMessage = func(Message) {}
					var tick func()
					tick = func() { lp.E.Schedule(src.Exp(0.1), tick) }
					lp.E.Schedule(src.Exp(0.1), tick)
				}
				b.StartTimer()
				f.Run(10) // 1000 windows, ~1 event per LP per 1000 windows
			}
		})
	}
}

// BenchmarkPHOLDSmall is the alloc-trajectory benchmark for the
// parallel engine: a short PHOLD run small enough to iterate, with
// allocation accounting on so the steady-state claim is visible in
// -benchmem output.
func BenchmarkPHOLDSmall(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ph := NewPHOLD(8, w, 1.0, 16, 0.1, 50, 17)
				b.StartTimer()
				ph.Run(200)
			}
		})
	}
}
