package parsim

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/eventq"
)

func TestFederationBasics(t *testing.T) {
	f := NewFederation(3, 1.0, 1, 42)
	if f.LPs() != 3 || f.Lookahead() != 1.0 {
		t.Fatal("accessors")
	}
	for i := 0; i < 3; i++ {
		if f.LP(i).Index != i {
			t.Fatal("LP index")
		}
	}
}

func TestCrossLPMessageDelivery(t *testing.T) {
	f := NewFederation(2, 1.0, 1, 7)
	var deliveredAt float64 = -1
	var payload any
	f.LP(1).OnMessage = func(m Message) {
		deliveredAt = f.LP(1).E.Now()
		payload = m.Data
	}
	f.LP(0).OnMessage = func(Message) {}
	f.LP(0).E.Schedule(0.5, func() {
		f.LP(0).Send(1, 2.0, "hello")
	})
	f.Run(10)
	if deliveredAt != 2.5 {
		t.Fatalf("delivered at %v, want 2.5", deliveredAt)
	}
	if payload != "hello" {
		t.Fatalf("payload = %v", payload)
	}
	if f.LP(0).Sent() != 1 || f.LP(1).Received() != 1 {
		t.Fatal("counters")
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	f := NewFederation(2, 1.0, 1, 7)
	f.LP(0).OnMessage = func(Message) {}
	f.LP(1).OnMessage = func(Message) {}
	f.LP(0).E.Schedule(0.1, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for sub-lookahead send")
			}
		}()
		f.LP(0).Send(1, 0.5, nil)
	})
	f.Run(1)
}

func TestRunRequiresHandlers(t *testing.T) {
	f := NewFederation(2, 1.0, 1, 7)
	f.LP(0).OnMessage = func(Message) {}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing handler")
		}
	}()
	f.Run(1)
}

func TestWindowCount(t *testing.T) {
	f := NewFederation(1, 2.0, 1, 7)
	f.LP(0).OnMessage = func(Message) {}
	f.Run(10)
	if f.Windows() != 5 {
		t.Fatalf("windows = %d, want 5", f.Windows())
	}
}

func TestPHOLDConservation(t *testing.T) {
	// Jobs are never created or destroyed: with remote hops the total
	// event count is positive and messages balance.
	ph := NewPHOLD(4, 2, 0.5, 8, 0.3, 10, 99)
	total := ph.Run(200)
	if total == 0 {
		t.Fatal("no events processed")
	}
	var sent, recv uint64
	for i := 0; i < ph.Fed.LPs(); i++ {
		sent += ph.Fed.LP(i).Sent()
		recv += ph.Fed.LP(i).Received()
	}
	if sent == 0 {
		t.Fatal("no remote messages with RemoteProb=0.3")
	}
	if recv != sent {
		t.Fatalf("sent %d != received %d", sent, recv)
	}
	per := ph.PerLPEvents()
	if len(per) != 4 {
		t.Fatal("per-LP counts")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// The load-bearing property: identical trajectories for 1 worker
	// and N workers.
	run := func(workers int) []uint64 {
		ph := NewPHOLD(6, workers, 0.5, 10, 0.4, 5, 1234)
		ph.Run(300)
		return ph.PerLPEvents()
	}
	seq := run(1)
	par := run(runtime.NumCPU())
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("LP %d diverged: %d vs %d", i, seq[i], par[i])
		}
	}
}

// TestDeterminismAcrossKindsAndWorkers demands bit-identical engine
// statistics for every FEL implementation and worker count: neither
// the queue structure, nor timer recycling, nor the persistent worker
// pool may leak into trajectories. The model mixes self-scheduling,
// cross-LP sends, and cancel-heavy decoy timers so tombstone recycling
// is exercised under parallel window execution.
func TestDeterminismAcrossKindsAndWorkers(t *testing.T) {
	run := func(kind eventq.Kind, workers int) []des.Stats {
		f := NewFederationWithQueue(5, 1.0, workers, 2024, kind)
		for i := 0; i < f.LPs(); i++ {
			lp := f.LP(i)
			src := lp.E.Stream("model")
			var decoy des.Timer
			var step func()
			step = func() {
				decoy.Cancel() // tombstone the previous decoy
				decoy = lp.E.Schedule(4+src.Float64(), func() {})
				if src.Bernoulli(0.35) {
					target := src.Intn(f.LPs() - 1)
					if target >= lp.Index {
						target++
					}
					lp.Send(target, 1+src.Float64(), nil)
				} else {
					lp.E.Schedule(0.5+src.Float64(), step)
				}
			}
			lp.OnMessage = func(Message) { step() }
			lp.E.Schedule(src.Float64(), step)
		}
		f.Run(60)
		out := make([]des.Stats, f.LPs())
		for i := range out {
			out[i] = f.LP(i).E.Stats()
		}
		return out
	}
	ref := run(eventq.KindHeap, 1)
	var canceled uint64
	for _, st := range ref {
		canceled += st.Canceled
	}
	if canceled == 0 {
		t.Fatal("model canceled nothing; test is vacuous")
	}
	for _, k := range eventq.Kinds() {
		for _, w := range []int{1, 2, 8} {
			got := run(k, w)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s/workers=%d: LP %d stats %+v, want %+v",
						k, w, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestParallelSpeedupWithHeavyWork(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-core host")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) time.Duration {
		start := time.Now()
		ph := NewPHOLD(8, workers, 1.0, 16, 0.1, 20000, 5)
		ph.Run(150)
		return time.Since(start)
	}
	seq := run(1)
	par := run(runtime.NumCPU())
	// Demand at least *some* speedup; CI noise keeps this loose.
	if par >= seq {
		t.Logf("warning: no speedup (seq %v, par %v) — loaded host?", seq, par)
	}
	speedup := float64(seq) / float64(par)
	if speedup < 1.1 {
		t.Skipf("speedup %.2f below threshold; host contention", speedup)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad n":         func() { NewFederation(0, 1, 1, 0) },
		"bad lookahead": func() { NewFederation(1, 0, 1, 0) },
		"bad workers":   func() { NewFederation(1, 1, 0, 0) },
		"bad horizon": func() {
			f := NewFederation(1, 1, 1, 0)
			f.LP(0).OnMessage = func(Message) {}
			f.Run(0)
		},
		"bad target": func() {
			f := NewFederation(1, 1, 1, 0)
			f.LP(0).OnMessage = func(Message) {}
			f.LP(0).E.Schedule(0, func() { f.LP(0).Send(5, 2, nil) })
			f.Run(1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
