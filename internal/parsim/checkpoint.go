package parsim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/des"
)

// This file implements federation-level checkpoint/restore. A snapshot
// is taken at a window barrier — between Run calls, when every outbox
// has been delivered and every LP engine sits exactly at the window
// clock — and contains the federation counters, each LP's embedded
// engine snapshot, and the model's Checkpointable state. A restored
// federation resumes at the recorded window boundary and produces a
// run bit-identical to one that was never interrupted, for any worker
// count.

// snapshot section names (federation level).
const (
	secFed   = "parsim.fed"
	secLP    = "parsim.lp"
	secModel = "parsim.model"
)

// EnableCheckpointing switches cross-LP message delivery from closures
// to a registered op ("parsim.msg") carrying the gob-encoded Message,
// so pending deliveries can ride in a snapshot. It must be called
// before Run; it is idempotent. Message payloads (Message.Data) must
// be gob-encodable — register concrete payload types with
// gob.Register.
//
// The op path costs one encode/decode per remote message; federations
// that never checkpoint keep the closure fast path by not calling
// this.
func (f *Federation) EnableCheckpointing() {
	if f.msgOps != nil {
		return
	}
	f.msgOps = make([]des.Op, len(f.lps))
	for i, lp := range f.lps {
		lp := lp
		f.msgOps[i] = lp.E.RegisterOp("parsim.msg", func(arg []byte) {
			m, err := decodeMessage(arg)
			if err != nil {
				panic(fmt.Sprintf("parsim: corrupt message op argument: %v", err))
			}
			lp.OnMessage(m)
		})
	}
}

// SetModel attaches the model's serializable state to federation
// snapshots: Checkpoint calls MarshalState, Restore calls
// UnmarshalState. Engine snapshots carry the pending events; this
// carries everything else the model accumulates (counters, caches).
func (f *Federation) SetModel(m checkpoint.Checkpointable) { f.model = m }

// Clock returns the end of the last completed window — the time a
// snapshot taken now would resume from.
func (f *Federation) Clock() float64 { return f.clock }

// Checkpoint writes a federation snapshot to w. It must be called
// between Run calls (at a window barrier) with checkpointing enabled.
func (f *Federation) Checkpoint(w io.Writer) error {
	if f.msgOps == nil {
		return fmt.Errorf("parsim: Checkpoint without EnableCheckpointing")
	}
	for _, lp := range f.lps {
		for t, msgs := range lp.outbox {
			if len(msgs) != 0 {
				return fmt.Errorf("parsim: Checkpoint with undelivered messages from LP %d to LP %d (not at a window barrier)", lp.Index, t)
			}
		}
	}
	cw := checkpoint.NewWriter(w)
	var enc checkpoint.Enc
	enc.Int(len(f.lps))
	enc.F64(f.lookahead)
	enc.F64(f.clock)
	enc.U64(f.windows)
	enc.U64(f.idleSkips.Load())
	if err := cw.Section(secFed, enc.Bytes()); err != nil {
		return err
	}
	for _, lp := range f.lps {
		var engSnap bytes.Buffer
		if err := lp.E.Checkpoint(&engSnap); err != nil {
			return fmt.Errorf("parsim: LP %d: %w", lp.Index, err)
		}
		var lpEnc checkpoint.Enc
		lpEnc.Int(lp.Index)
		lpEnc.U64(lp.sent)
		lpEnc.U64(lp.recv)
		lpEnc.Raw(engSnap.Bytes())
		if err := cw.Section(secLP, lpEnc.Bytes()); err != nil {
			return err
		}
	}
	if f.model != nil {
		state, err := f.model.MarshalState()
		if err != nil {
			return fmt.Errorf("parsim: model state: %w", err)
		}
		if err := cw.Section(secModel, state); err != nil {
			return err
		}
	}
	return cw.Close()
}

// Restore overwrites the federation with a snapshot written by
// Checkpoint. The federation must have the same LP count and lookahead
// as the checkpointed one and the same ops registered (the model must
// be constructed first, then restored over); the worker count may
// differ — results are worker-count independent either way.
func (f *Federation) Restore(r io.Reader) error {
	if f.msgOps == nil {
		return fmt.Errorf("parsim: Restore without EnableCheckpointing")
	}
	snap, err := checkpoint.Read(r)
	if err != nil {
		return err
	}
	fedSec, ok := snap.Section(secFed)
	if !ok {
		return fmt.Errorf("parsim: snapshot has no %s section", secFed)
	}
	d := checkpoint.NewDec(fedSec)
	n := d.Int()
	lookahead := d.F64()
	clock := d.F64()
	windows := d.U64()
	idleSkips := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(f.lps) {
		return fmt.Errorf("parsim: snapshot has %d LPs, federation has %d", n, len(f.lps))
	}
	if lookahead != f.lookahead {
		return fmt.Errorf("parsim: snapshot lookahead %v, federation lookahead %v", lookahead, f.lookahead)
	}
	lpSecs := snap.All(secLP)
	if len(lpSecs) != n {
		return fmt.Errorf("parsim: snapshot has %d LP sections, want %d", len(lpSecs), n)
	}
	modelState, hasModel := snap.Section(secModel)
	if hasModel && f.model == nil {
		return fmt.Errorf("parsim: snapshot carries model state but no model is attached (SetModel)")
	}
	if !hasModel && f.model != nil {
		return fmt.Errorf("parsim: snapshot has no model state but a model is attached")
	}

	for i, payload := range lpSecs {
		ld := checkpoint.NewDec(payload)
		idx := ld.Int()
		sent := ld.U64()
		recv := ld.U64()
		engSnap := ld.Raw()
		if err := ld.Err(); err != nil {
			return err
		}
		if idx != i {
			return fmt.Errorf("parsim: LP section %d has index %d", i, idx)
		}
		lp := f.lps[i]
		if err := lp.E.Restore(bytes.NewReader(engSnap)); err != nil {
			return fmt.Errorf("parsim: LP %d: %w", i, err)
		}
		lp.sent = sent
		lp.recv = recv
		for t := range lp.outbox {
			lp.outbox[t] = lp.outbox[t][:0]
		}
	}
	if f.model != nil {
		if err := f.model.UnmarshalState(modelState); err != nil {
			return fmt.Errorf("parsim: model state: %w", err)
		}
	}
	f.clock = clock
	f.windows = windows
	f.idleSkips.Store(idleSkips)
	return nil
}

// encodeMessage serializes a cross-LP message for the op-based
// delivery path. Payloads must be gob-encodable; a failure here is a
// model bug (an unregistered concrete type), reported loudly.
func encodeMessage(m *Message) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("parsim: message payload is not gob-encodable (register it with gob.Register): %v", err))
	}
	return buf.Bytes()
}

func decodeMessage(arg []byte) (Message, error) {
	var m Message
	err := gob.NewDecoder(bytes.NewReader(arg)).Decode(&m)
	return m, err
}
