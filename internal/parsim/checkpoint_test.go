package parsim

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"
)

const (
	ckLPs       = 8
	ckJobs      = 8
	ckWork      = 200
	ckLookahead = 1.0
	ckRemote    = 0.3
	ckSeed      = 411
)

func ckPHOLD(workers int) *PHOLD {
	return NewPHOLD(ckLPs, workers, ckLookahead, ckJobs, ckRemote, ckWork, ckSeed)
}

// TestFederationResumeBitIdentical checkpoints a PHOLD federation at a
// window barrier halfway through the run, restores it into a freshly
// built federation (different seed, possibly different worker count),
// and requires the final per-LP event counts, engine statistics, and
// message counters to equal a run that was never interrupted.
func TestFederationResumeBitIdentical(t *testing.T) {
	const H = 40.0
	ref := ckPHOLD(1)
	ref.Run(H)
	refCounts := ref.PerLPEvents()

	for _, wk := range []struct{ first, resumed int }{
		{1, 1}, {2, 2}, {8, 8}, {2, 8}, {8, 1},
	} {
		wk := wk
		t.Run(fmt.Sprintf("w%d-w%d", wk.first, wk.resumed), func(t *testing.T) {
			first := ckPHOLD(wk.first)
			first.Run(H / 2)
			var snap bytes.Buffer
			if err := first.Fed.Checkpoint(&snap); err != nil {
				t.Fatal(err)
			}

			// The restoring federation is built with a different seed: every
			// stream must come from the snapshot, not the constructor.
			res := NewPHOLD(ckLPs, wk.resumed, ckLookahead, ckJobs, ckRemote, ckWork, ckSeed+999)
			if err := res.Fed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			if got := res.Fed.Clock(); got != H/2 {
				t.Fatalf("restored clock %v, want %v", got, H/2)
			}
			res.Run(H)

			if got := res.PerLPEvents(); !equalU64(got, refCounts) {
				t.Fatalf("per-LP counts %v, want %v", got, refCounts)
			}
			if got, want := res.Fed.Windows(), ref.Fed.Windows(); got != want {
				t.Fatalf("windows %d, want %d", got, want)
			}
			for i := 0; i < ckLPs; i++ {
				if g, w := res.Fed.LP(i).E.Stats(), ref.Fed.LP(i).E.Stats(); g != w {
					t.Fatalf("LP %d stats %+v, want %+v", i, g, w)
				}
				if g, w := res.Fed.LP(i).Sent(), ref.Fed.LP(i).Sent(); g != w {
					t.Fatalf("LP %d sent %d, want %d", i, g, w)
				}
				if g, w := res.Fed.LP(i).Received(), ref.Fed.LP(i).Received(); g != w {
					t.Fatalf("LP %d recv %d, want %d", i, g, w)
				}
			}
		})
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFederationCheckpointStable pins that a federation snapshot is
// deterministic and non-destructive.
func TestFederationCheckpointStable(t *testing.T) {
	ph := ckPHOLD(2)
	ph.Run(10)
	var a, b bytes.Buffer
	if err := ph.Fed.Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := ph.Fed.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("federation checkpoint is not deterministic")
	}

	ref := ckPHOLD(2)
	ref.Run(20)
	ph.Run(20)
	if got, want := ph.PerLPEvents(), ref.PerLPEvents(); !equalU64(got, want) {
		t.Fatalf("post-checkpoint run diverged: %v vs %v", got, want)
	}
}

// TestFederationRestoreValidation exercises the shape checks: LP count,
// lookahead, and missing-model mismatches are hard errors.
func TestFederationRestoreValidation(t *testing.T) {
	ph := ckPHOLD(1)
	ph.Run(5)
	var snap bytes.Buffer
	if err := ph.Fed.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}

	wrongN := NewPHOLD(ckLPs+1, 1, ckLookahead, ckJobs, ckRemote, ckWork, ckSeed)
	if err := wrongN.Fed.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("LP-count mismatch accepted")
	}
	wrongLA := NewPHOLD(ckLPs, 1, ckLookahead*2, ckJobs, ckRemote, ckWork, ckSeed)
	if err := wrongLA.Fed.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("lookahead mismatch accepted")
	}

	bare := NewFederation(ckLPs, ckLookahead, 1, ckSeed)
	if err := bare.Checkpoint(io.Discard); err == nil {
		t.Fatal("Checkpoint without EnableCheckpointing accepted")
	}
	if err := bare.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("Restore without EnableCheckpointing accepted")
	}
	bare.EnableCheckpointing()
	// Ops now exist, but no model is attached while the snapshot carries
	// model state.
	if err := bare.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("model-state mismatch accepted")
	}
}

// TestRunPastClockPanics pins the resume contract: Run(horizon) with
// horizon at or before the restored window clock is a programming
// error, not a silent no-op.
func TestRunPastClockPanics(t *testing.T) {
	ph := ckPHOLD(1)
	ph.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Run(clock) did not panic")
		}
	}()
	ph.Fed.Run(5)
}

// TestCheckpointOverheadBounded pins the headline cost claim: taking a
// snapshot of an E5-shaped PHOLD federation costs less than 5% of one
// synchronization window's wall time. Best-of-5 on both sides to shrug
// off scheduler noise.
func TestCheckpointOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const work = 50000 // heavy enough that a window dwarfs a snapshot
	ph := NewPHOLD(8, 1, 1.0, 16, 0.2, work, 77)
	ph.Run(10) // warm up: free lists populated, jobs spread out

	best := func(n int, f func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	snapTime := best(5, func() {
		if err := ph.Fed.Checkpoint(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	next := ph.Fed.Clock()
	windowTime := best(5, func() {
		next += 1.0 // exactly one lookahead window per measurement
		ph.Fed.Run(next)
	})
	if ratio := float64(snapTime) / float64(windowTime); ratio >= 0.05 {
		t.Fatalf("snapshot %v is %.1f%% of a %v window (budget 5%%)",
			snapTime, 100*ratio, windowTime)
	}
}
