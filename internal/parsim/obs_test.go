package parsim

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestFederationObservabilityDeterminism pins that enabling tracing
// and metrics changes nothing about a parallel run: per-LP event
// counters stay bit-identical to an untraced run at every worker
// count.
func TestFederationObservabilityDeterminism(t *testing.T) {
	run := func(workers int, observe bool) []uint64 {
		ph := NewPHOLD(4, workers, 0.5, 8, 0.3, 50, 42)
		if observe {
			ph.Fed.EnableObservability(1 << 12)
		}
		ph.Run(30)
		return ph.PerLPEvents()
	}
	ref := run(1, false)
	for _, workers := range []int{1, 2, 4} {
		got := run(workers, true)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d traced: LP %d events %d, want %d",
					workers, i, got[i], ref[i])
			}
		}
	}
}

func TestFederationSnapshot(t *testing.T) {
	ph := NewPHOLD(4, 2, 0.5, 8, 0.3, 50, 42)
	ph.Fed.EnableObservability(1 << 12)
	ph.Run(30)

	s := ph.Fed.Snapshot()
	if s.Windows != ph.Fed.Windows() || s.Windows == 0 {
		t.Fatalf("windows = %d", s.Windows)
	}
	if len(s.LPs) != 4 {
		t.Fatalf("LP stats = %d", len(s.LPs))
	}
	var executed uint64
	for i, st := range s.LPs {
		executed += st.Executed
		if st.Exec == nil || st.Dwell == nil {
			t.Fatalf("LP %d missing histograms", i)
		}
		if st.Exec.Count() != st.Executed {
			t.Fatalf("LP %d exec histogram n=%d, executed=%d", i, st.Exec.Count(), st.Executed)
		}
	}
	if executed == 0 {
		t.Fatal("no events executed")
	}
	if s.BarrierWait == nil || s.BarrierWait.Count() == 0 {
		t.Fatal("no barrier-wait samples")
	}
	if s.WindowWall == nil || s.WindowWall.Count() != s.Windows {
		t.Fatalf("window-wall samples = %d, windows = %d", s.WindowWall.Count(), s.Windows)
	}
	if len(s.Utilization) != 2 {
		t.Fatalf("utilization workers = %d", len(s.Utilization))
	}
	for w, u := range s.Utilization {
		if u <= 0 || u > 1.5 { // wall-clock jitter can push it slightly over 1
			t.Fatalf("worker %d utilization = %v", w, u)
		}
	}

	// Without observability a snapshot still carries the counters.
	ph2 := NewPHOLD(2, 1, 0.5, 4, 0.3, 10, 7)
	ph2.Run(10)
	s2 := ph2.Fed.Snapshot()
	if s2.BarrierWait != nil || s2.Utilization != nil {
		t.Fatal("untraced snapshot has observability fields")
	}
	if s2.Windows == 0 || len(s2.LPs) != 2 {
		t.Fatalf("untraced snapshot counters: %+v", s2)
	}
}

// TestFederationTraceTracks pins the exported track layout (one per LP
// plus one per pool worker, distinct tids) and that the resulting
// Chrome trace parses and contains barrier-wait spans.
func TestFederationTraceTracks(t *testing.T) {
	ph := NewPHOLD(4, 2, 0.5, 8, 0.3, 50, 42)
	if ph.Fed.TraceTracks() != nil {
		t.Fatal("tracks before EnableObservability")
	}
	ph.Fed.EnableObservability(1 << 12)
	ph.Run(30)

	tracks := ph.Fed.TraceTracks()
	if len(tracks) != 4+2 {
		t.Fatalf("tracks = %d, want 6", len(tracks))
	}
	seen := map[int]bool{}
	for _, tr := range tracks {
		if seen[tr.TID] {
			t.Fatalf("duplicate tid %d", tr.TID)
		}
		seen[tr.TID] = true
	}
	var execSpans, barrierSpans int
	for _, tr := range tracks {
		for _, s := range tr.Rec.Spans() {
			switch s.Kind {
			case obs.KindExec:
				execSpans++
			case obs.KindBarrierWait:
				barrierSpans++
			}
		}
	}
	if execSpans == 0 || barrierSpans == 0 {
		t.Fatalf("spans: exec=%d barrier=%d", execSpans, barrierSpans)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tracks...); err != nil {
		t.Fatal(err)
	}
	events, tids, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || len(tids) != 6 {
		t.Fatalf("chrome trace: events=%d tids=%v", events, tids)
	}
}
