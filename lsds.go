// Package lsds is a simulation framework for large scale distributed
// systems, reproducing "New Trends in Large Scale Distributed Systems
// Simulation" (Dobre, Pop, Cristea — ICPP 2009).
//
// The framework provides a deterministic discrete-event kernel with
// pluggable future-event-list structures (binary heap, sorted list,
// skip list, splay tree, calendar queue, ladder queue), a
// process-oriented layer mapping simulated activities onto goroutines
// (MONARC-style "active objects"), flow-level and packet-level network
// models, host resources (time-/space-shared CPUs, disks, tape,
// database servers), Grid middleware (cluster queue disciplines,
// brokering policies, a computational-economy broker), a Data Grid
// replication substrate (catalog, eviction policies, pull/push
// replication, replication agents), workload and monitoring input
// layers, a conservative parallel execution engine, and the paper's
// taxonomy as a typed data model.
//
// Six personality packages configure this machinery into the designs
// the paper surveys — Bricks, OptorSim, SimGrid, GridSim, ChicagoSim
// and MONARC 2 — and internal/experiments regenerates the paper's
// Table 1 plus its quantitative claims (E1–E10; see DESIGN.md and
// EXPERIMENTS.md).
//
// This top-level package re-exports the primary entry points so that
// scenarios read naturally:
//
//	sim := lsds.New(lsds.DefaultConfig())
//	site := sim.Grid.AddSite("cluster", lsds.SiteSpec{Cores: 16, CoreSpeed: 1e9})
//	...
//	sim.Run()
//
// See the runnable programs under examples/ for complete scenarios.
package lsds

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/queueing"
	"repro/internal/replication"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/taxonomy"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Core facade.
type (
	// Simulation is a fully wired scenario (see internal/core).
	Simulation = core.Simulation
	// Config tunes a Simulation.
	Config = core.Config
)

// New creates a simulation.
func New(cfg Config) *Simulation { return core.New(cfg) }

// DefaultConfig returns the default simulation configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// SelfProfile positions this framework in the paper's taxonomy.
func SelfProfile() *taxonomy.Profile { return core.SelfProfile() }

// Kernel types.
type (
	// Engine is the discrete-event kernel.
	Engine = des.Engine
	// Process is a simulated activity (goroutine-backed).
	Process = des.Process
	// Timer is a cancellable scheduled event.
	Timer = des.Timer
	// QueueKind selects the future-event-list structure.
	QueueKind = eventq.Kind
	// Rand is the deterministic random source.
	Rand = rng.Source
)

// Topology and resources.
type (
	// Grid is a set of provisioned sites over a network.
	Grid = topology.Grid
	// Site is one provisioned location.
	Site = topology.Site
	// SiteSpec describes a site's resources.
	SiteSpec = topology.SiteSpec
	// Fabric abstracts the network granularities.
	Fabric = netsim.Fabric
)

// Middleware.
type (
	// Job is a unit of grid work.
	Job = scheduler.Job
	// Cluster is a local resource manager.
	Cluster = scheduler.Cluster
	// Broker places jobs on sites.
	Broker = scheduler.Broker
	// Policy selects execution sites.
	Policy = scheduler.Policy
)

// Data Grid.
type (
	// File is a logical Data Grid file.
	File = replication.File
	// ReplicaCatalog maps files to holding sites.
	ReplicaCatalog = replication.Catalog
	// ReplicationSystem is the Data Grid replication service.
	ReplicationSystem = replication.System
)

// Workload.
type (
	// Activity is an open arrival process ("Activity object").
	Activity = workload.Activity
	// JobMix samples jobs from weighted classes.
	JobMix = workload.Mix
)

// Analytics.
type (
	// MM1 holds M/M/1 steady-state measures for validation.
	MM1 = queueing.MM1
	// TaxonomyProfile is one simulator's position in the taxonomy.
	TaxonomyProfile = taxonomy.Profile
)
