#!/usr/bin/env bash
# crash-smoke: the end-to-end proof that the coordinator is no longer a
# single point of failure. A distributed PHOLD run starts across three
# OS processes, the coordinator is killed with SIGKILL mid-run (no
# cleanup, exactly like a crashed host), and a fresh coordinator
# process restarts from the durable control-plane journal, re-adopts
# the parked workers, and finishes the run. -verify then replays the
# whole horizon single-process and fails on any divergence — the crash
# must not change one bit of the result.
set -euo pipefail

GO=${GO:-go}
PORT=${PORT:-9461}
DIR=$(mktemp -d)
cleanup() {
    status=$?
    jobs -p | xargs -r kill -9 2>/dev/null || true
    rm -rf "$DIR"
    exit $status
}
trap cleanup EXIT

$GO build -o "$DIR/lsnode" ./cmd/lsnode

# The E5 workload shape: windows cost ~10ms each, so the run lasts
# seconds and the kill below lands mid-flight.
MODEL="-lps 8 -jobs 16 -work 30000 -lookahead 1 -horizon 400"

# Workers park with a generous budget when the coordinator dies:
# short single-shot resume cycles, then bounded reconnect-with-backoff
# until the restarted coordinator re-adopts them.
"$DIR/lsnode" -mode worker -addr 127.0.0.1:$PORT -own 0,1,2,3 $MODEL \
    -connect-retries 100 -connect-backoff 20ms -max-park 2000 &
W1=$!
"$DIR/lsnode" -mode worker -addr 127.0.0.1:$PORT -own 4,5,6,7 $MODEL \
    -connect-retries 100 -connect-backoff 20ms -max-park 2000 &
W2=$!

COORD="-mode coordinator -addr 127.0.0.1:$PORT -workers 2 $MODEL
    -journal $DIR/coord.journal
    -checkpoint $DIR/cluster.ckpt -ckpt-every 1 -resume $DIR/cluster.ckpt"

"$DIR/lsnode" $COORD &
C1=$!
sleep 1.5
kill -9 "$C1" 2>/dev/null || true
if wait "$C1"; then
    echo "crash-smoke: run finished before the kill landed; raise -horizon" >&2
    exit 1
fi
echo "crash-smoke: coordinator (pid $C1) killed -9 mid-run; restarting from journal"

"$DIR/lsnode" $COORD -verify
wait "$W1"
wait "$W2"
echo "crash-smoke: OK — crash + journal restart bit-identical to single-process run"
