package lsds

import (
	"strings"
	"testing"

	"repro/internal/scheduler"
)

// TestFacadeEndToEnd drives a small scenario purely through the
// re-exported public API, the path the README's quickstart shows.
func TestFacadeEndToEnd(t *testing.T) {
	sim := New(DefaultConfig())
	origin := sim.Grid.AddSite("users", SiteSpec{})
	site := sim.Grid.AddSite("cluster", SiteSpec{Cores: 4, CoreSpeed: 1e9})
	sim.Grid.Link(origin, site, 1e8, 0.01)
	sim.Grid.Topo.ComputeRoutes()
	sim.AddCluster(site, scheduler.FCFS)
	broker := sim.NewBroker("main", scheduler.MCTPolicy{})
	done := 0
	broker.OnDone(func(j *Job) { done++ })
	for i := 0; i < 5; i++ {
		broker.Submit(&Job{ID: i, Name: "job", Ops: 1e9, Origin: origin})
	}
	end := sim.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if end <= 0 {
		t.Fatalf("end = %v", end)
	}
	var report strings.Builder
	if err := sim.Report(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "main") {
		t.Fatal("report missing broker")
	}
}

// TestFacadeProcessAPI exercises the kernel aliases.
func TestFacadeProcessAPI(t *testing.T) {
	sim := New(Config{Seed: 4})
	res := sim.Engine.NewResource("r", 1)
	order := []string{}
	for _, name := range []string{"a", "b"} {
		name := name
		sim.Engine.Spawn(name, func(p *Process) {
			res.Acquire(p, 1)
			p.Hold(2)
			res.Release(1)
			order = append(order, name)
		})
	}
	sim.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

// TestFacadeSelfProfile checks the framework's own taxonomy row is
// exported and valid.
func TestFacadeSelfProfile(t *testing.T) {
	p := SelfProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeQueueKinds verifies the QueueKind alias reaches the engine.
func TestFacadeQueueKinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Queue = QueueKind("ladder")
	sim := New(cfg)
	fired := false
	sim.Engine.Schedule(1, func() { fired = true })
	sim.Run()
	if !fired {
		t.Fatal("ladder-queue engine did not run")
	}
}
