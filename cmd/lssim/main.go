// Command lssim runs one simulator personality scenario and prints its
// result metrics — the scenario-runner front end of the framework.
//
// Usage:
//
//	lssim -sim bricks|optorsim|simgrid|gridsim|chicsim|monarc [-seed N] [-jobs N]
//
// Each personality runs its default configuration with the seed and
// job-count overrides applied where meaningful.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simulators/bricks"
	"repro/internal/simulators/chicsim"
	"repro/internal/simulators/gridsim"
	"repro/internal/simulators/monarc"
	"repro/internal/simulators/optorsim"
	"repro/internal/simulators/simgrid"
)

func main() {
	sim := flag.String("sim", "monarc", "personality: bricks|optorsim|simgrid|gridsim|chicsim|monarc")
	seed := flag.Uint64("seed", 1, "random seed")
	jobs := flag.Int("jobs", 0, "job/task count override (0 = personality default)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto) of the run to this file")
	histo := flag.Bool("histo", false, "print event-latency histograms after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "lssim: pprof:", err)
			}
		}()
	}

	// Personalities construct their engines internally, so the trace
	// recorder and histograms are injected through the engine's default
	// observer (sequential front-end wiring; see des.SetDefaultObserver).
	var rec *obs.Recorder
	var met *obs.Metrics
	if *trace != "" || *histo {
		met = &obs.Metrics{}
		o := &des.Observer{Metrics: met}
		if *trace != "" {
			rec = obs.NewRecorder(1 << 18)
			o.Recorder = rec
		}
		des.SetDefaultObserver(o)
		defer des.SetDefaultObserver(nil)
	}

	t := metrics.NewTable(fmt.Sprintf("lssim: %s (seed %d)", *sim, *seed), "metric", "value")
	switch *sim {
	case "bricks":
		cfg := bricks.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.JobsPerClient = *jobs / cfg.Clients
		}
		r := bricks.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("makespan s", r.Makespan)
		t.AddRowf("mean response s", r.MeanResponse)
		t.AddRowf("mean wait s", r.MeanWait)
		t.AddRowf("server utilization", r.Utilization)
		t.AddRowf("WAN GB", r.WANBytesMoved/1e9)
	case "optorsim":
		cfg := optorsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := optorsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("mean job time s", r.MeanJobTime)
		t.AddRowf("local hit ratio", r.LocalHitRatio)
		t.AddRowf("replica pulls", r.Pulls)
		t.AddRowf("evictions", r.Evictions)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
	case "simgrid":
		cfg := simgrid.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Tasks = *jobs
		}
		r := simgrid.Run(cfg)
		t.AddRowf("tasks", r.Tasks)
		t.AddRowf("makespan s", r.Makespan)
		t.AddRowf("mean response s", r.MeanResponse)
		for i, n := range r.PerMachineJobs {
			t.AddRowf(fmt.Sprintf("machine %d tasks", i), n)
		}
	case "gridsim":
		cfg := gridsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := gridsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("completed", r.Completed)
		t.AddRowf("rejected", r.Rejected)
		t.AddRowf("deadline misses", r.DeadlineMisses)
		t.AddRowf("total spend", r.TotalSpend)
		t.AddRowf("mean response s", r.MeanResponse)
	case "chicsim":
		cfg := chicsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := chicsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("mean response s", r.MeanResponse)
		t.AddRowf("local hit ratio", r.LocalHitRatio)
		t.AddRowf("pushes", r.Pushes)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
	case "monarc":
		cfg := monarc.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Runs = *jobs
		}
		r := monarc.Run(cfg)
		t.AddRowf("RAW files produced", r.RawProduced)
		t.AddRowf("replicas shipped", r.Shipped)
		t.AddRowf("agent max delay s", r.AgentMaxDelay)
		t.AddRowf("reco jobs", r.RecoJobs)
		t.AddRowf("analysis jobs", r.AnalysisJobs)
		t.AddRowf("mean reco s", r.MeanRecoTime)
		t.AddRowf("mean analysis s", r.MeanAnaTime)
		t.AddRowf("T0 utilization", r.T0Utilization)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
		t.AddRowf("DB queries", r.DBQueries)
	default:
		fmt.Fprintf(os.Stderr, "lssim: unknown personality %q\n", *sim)
		flag.Usage()
		os.Exit(2)
	}
	if *histo {
		t.AddRowf("event exec", met.Exec.String())
		t.AddRowf("queue dwell (sim ns)", met.Dwell.String())
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lssim:", err)
		os.Exit(1)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		track := obs.Track{Name: *sim, TID: 0, Rec: rec}
		if err := obs.WriteChromeTrace(f, track); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d spans, %d dropped)\n", *trace, rec.Len(), rec.Dropped())
	}
}
