// Command lssim runs one simulator personality scenario and prints its
// result metrics — the scenario-runner front end of the framework.
//
// Usage:
//
//	lssim -sim bricks|optorsim|simgrid|gridsim|chicsim|monarc|phold|distphold [-seed N] [-jobs N]
//
// Each personality runs its default configuration with the seed and
// job-count overrides applied where meaningful.
//
// The phold personality is the checkpointable parallel benchmark: with
// -checkpoint it runs to a window barrier and writes a snapshot; with
// -resume it restores a snapshot and finishes the run; with -verify it
// additionally replays the whole run uninterrupted in-process and
// requires bit-identical results.
//
// The distphold personality runs the same benchmark truly distributed:
// an in-process coordinator plus -workers TCP workers talking over the
// loopback, optionally through the deterministic fault injector
// (package chaos). The -chaos-* flags attack both directions of the
// wire; -chaos-reset-at forces connection resets at exact coordinator
// message indices (deterministic reconnect drills); -verify replays
// the run single-process and requires bit-identical per-LP results —
// the paper-grade evidence that a hostile network costs retries, never
// answers. -delay-factor widens the mean event spacing (sparse
// traffic) and -skip-idle enables coordinator window skipping over the
// resulting empty windows; -verify still holds in both modes.
// -skew-hot/-skew make the lowest LPs hot (they fire -skew times as
// often), and -rebalance turns on adaptive partitioning: the
// coordinator watches per-LP load and live-migrates LPs between
// workers at window barriers (cadence -rebalance-every, hysteresis
// -imbalance-thresh). -verify still holds — migration never changes
// results, only where the work runs. -journal makes the coordinator's
// control plane durable: a coordinator restarted with the same journal
// path re-adopts the surviving workers and finishes the run with
// results bit-identical to one that was never interrupted.
//
// With cluster observability on (-trace, -histo, -metrics-addr, or
// -obs-every) distphold aggregates worker telemetry shipped over the
// wire itself: -trace writes one merged, validated Perfetto trace with
// a track per worker plus the coordinator's window-phase spans, -histo
// prints cluster-wide latency histograms, and -metrics-addr serves the
// live JSON snapshot (plus pprof) while the run is in flight.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/des"
	"repro/internal/distsim"
	"repro/internal/metrics"
	"repro/internal/monitoring"
	"repro/internal/obs"
	"repro/internal/parsim"
	"repro/internal/partition"
	"repro/internal/simulators/bricks"
	"repro/internal/simulators/chicsim"
	"repro/internal/simulators/gridsim"
	"repro/internal/simulators/monarc"
	"repro/internal/simulators/optorsim"
	"repro/internal/simulators/simgrid"
)

// phold personality parameters (fixed except for the flags): an
// 8-LP federation with unit lookahead, the E5 default traffic mix.
const (
	pholdLPs       = 8
	pholdLookahead = 1.0
	pholdJobs      = 16
	pholdRemote    = 0.2
	pholdWork      = 100
)

// runPHOLD executes the checkpointable PHOLD personality: optionally
// restoring a snapshot first, optionally stopping at a window barrier
// to write one, and optionally verifying the finished run against an
// uninterrupted in-process replay.
func runPHOLD(t *metrics.Table, seed uint64, jobs int, horizon float64, workers int, ckptPath string, ckptAt float64, resumePath string, verify bool) error {
	jobsPer := pholdJobs
	if jobs > 0 {
		jobsPer = jobs
	}
	build := func(w int, s uint64) *parsim.PHOLD {
		return parsim.NewPHOLD(pholdLPs, w, pholdLookahead, jobsPer, pholdRemote, pholdWork, s)
	}
	ph := build(workers, seed)
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return err
		}
		err = ph.Fed.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		t.AddRowf("resumed from", fmt.Sprintf("%s (t=%v)", resumePath, ph.Fed.Clock()))
	}
	if ckptPath != "" {
		at := ckptAt
		if at == 0 {
			at = horizon / 2
		}
		if at <= ph.Fed.Clock() {
			return fmt.Errorf("checkpoint time %v is not past the clock %v", at, ph.Fed.Clock())
		}
		ph.Fed.Run(at)
		f, err := os.Create(ckptPath)
		if err != nil {
			return err
		}
		if err := ph.Fed.Checkpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		t.AddRowf("checkpoint", fmt.Sprintf("%s (t=%v)", ckptPath, ph.Fed.Clock()))
		t.AddRowf("events so far", ph.TotalEvents())
		return nil
	}
	ph.Run(horizon)
	t.AddRowf("events", ph.TotalEvents())
	t.AddRowf("windows", ph.Fed.Windows())
	t.AddRowf("per-LP events", fmt.Sprint(ph.PerLPEvents()))
	if verify {
		ref := build(1, seed)
		ref.Run(horizon)
		want, got := ref.PerLPEvents(), ph.PerLPEvents()
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("verify: LP %d has %d events, uninterrupted run has %d (want %v, got %v)",
					i, got[i], want[i], want, got)
			}
		}
		if ph.Fed.Windows() != ref.Fed.Windows() {
			return fmt.Errorf("verify: %d windows, uninterrupted run has %d", ph.Fed.Windows(), ref.Fed.Windows())
		}
		t.AddRowf("verify", "identical to uninterrupted run")
	}
	return nil
}

// runDistPHOLD executes the distributed PHOLD personality: a
// coordinator and nWorkers TCP workers in one process, with the chaos
// injector optionally attacking both directions of every connection.
// Cluster observability (obsEvery/tracePath/metricsAddr/histo) flows
// through the coordinator's ClusterObs — the sequential default
// observer cannot be used here because the in-process workers run
// concurrently.
func runDistPHOLD(t *metrics.Table, seed uint64, jobs, nWorkers, threads int, horizon float64, delayFactor float64, skipIdle bool, ch chaos.Config, resetAt string, verify bool, obsEvery int, tracePath, metricsAddr string, histo bool, rebalance bool, rebalanceEvery int, imbalanceThresh float64, skewHot int, skewFactor float64, journalPath string) error {
	jobsPer := pholdJobs
	if jobs > 0 {
		jobsPer = jobs
	}
	if delayFactor <= 0 {
		return fmt.Errorf("-delay-factor must be positive, got %v", delayFactor)
	}
	if nWorkers <= 0 || pholdLPs%nWorkers != 0 {
		return fmt.Errorf("-workers must divide the %d LPs, got %d", pholdLPs, nWorkers)
	}
	forced, err := parseResetAt(resetAt)
	if err != nil {
		return err
	}
	ch.ResetAt = forced
	chaotic := ch.Drop > 0 || ch.Dup > 0 || ch.Reorder > 0 || ch.Corrupt > 0 ||
		ch.Reset > 0 || ch.Delay > 0 || ch.Jitter > 0 || len(ch.ResetAt) > 0 ||
		ch.PartitionDur > 0

	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer base.Close()
	addr := base.Addr().String()
	var ln net.Listener = base
	if chaotic {
		ln = chaos.New(ch).Listener(base)
	}

	c := distsim.NewCoordinator(pholdLPs, pholdLookahead, horizon, seed)
	c.SkipIdle = skipIdle
	c.JournalPath = journalPath
	if rebalance {
		// Event-count weights keep the CLI's planning deterministic for
		// a given seed; the busy-ns signal is available through the API.
		c.Rebalance = &partition.Greedy{Threshold: imbalanceThresh, UseEvents: true}
		c.RebalanceEvery = rebalanceEvery
	}
	c.Timeout = 2 * time.Second
	c.ReconnectWait = 10 * time.Second
	c.MaxReconnects = 1 << 20

	var co *distsim.ClusterObs
	if obsEvery > 0 || tracePath != "" || metricsAddr != "" || histo {
		every := obsEvery
		if every <= 0 {
			every = 1
		}
		co = c.EnableObservability(every, 0)
	}
	var ms *monitoring.MetricsServer
	if metricsAddr != "" {
		var err error
		ms, err = monitoring.ServeMetrics(metricsAddr, func() any { return co.Snapshot() })
		if err != nil {
			return err
		}
		defer ms.Close()
		t.AddRowf("metrics endpoint", "http://"+ms.Addr()+"/metrics")
	}

	half := pholdLPs / nWorkers
	workers := make([]*distsim.Worker, nWorkers)
	for i := range workers {
		ids := make([]int, 0, half)
		for lp := i * half; lp < (i+1)*half; lp++ {
			ids = append(ids, lp)
		}
		w := distsim.NewWorker(ids...)
		// Hierarchical parallelism: every in-process worker runs its LPs
		// across an intra-worker pool; results are bit-identical for any
		// thread count.
		w.Threads = threads
		distsim.InstallPHOLDSkew(w, pholdLPs, jobsPer, pholdRemote, pholdWork, delayFactor, skewHot, skewFactor, 0)
		w.ConnectBackoff = 10 * time.Millisecond
		w.ConnectRetries = 100
		// Short handshake waits: a dropped hello or resume reply must be
		// retried several times inside the coordinator's reconnect
		// window, not once at the default 10s.
		w.HandshakeTimeout = time.Second
		if chaotic {
			// Each worker attacks its own dialed connections with an
			// independent fault stream; scripted resets stay on the
			// coordinator side so their message indices are exact.
			wcfg := ch
			wcfg.ResetAt = nil
			wcfg.Seed += uint64(i+1) * 1000003
			inj := chaos.New(wcfg)
			w.Dial = func() (net.Conn, error) {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				return inj.Conn(conn), nil
			}
		}
		workers[i] = w
	}

	errs := make(chan error, len(workers))
	for _, w := range workers {
		w := w
		go func() { errs <- w.Run(addr) }()
	}
	if err := c.Serve(ln, len(workers)); err != nil {
		return err
	}
	for range workers {
		if err := <-errs; err != nil {
			return fmt.Errorf("worker: %w", err)
		}
	}

	perLP := make([]uint64, pholdLPs)
	var executed uint64
	for _, ws := range c.WorkerStats {
		executed += ws.EventsExecuted
		for lp, n := range ws.PerLPCounts {
			perLP[lp] = n
		}
	}
	t.AddRowf("windows", c.Windows)
	t.AddRowf("windows skipped", c.WindowsSkipped)
	t.AddRowf("events routed", c.EventsRouted)
	t.AddRowf("engine events", executed)
	t.AddRowf("reconnects", c.Reconnects)
	if journalPath != "" {
		t.AddRowf("workers readopted", c.Readopted)
	}
	if rebalance {
		t.AddRowf("migrations", c.Migrations)
	}
	t.AddRowf("per-LP events", fmt.Sprint(perLP))
	if c.StatsIncomplete {
		t.AddRowf("stats incomplete", true)
	}

	if co != nil {
		snap := co.Snapshot()
		t.AddRowf("coord frames sent/recv", fmt.Sprintf("%d/%d", snap.CoordWire.FramesSent, snap.CoordWire.FramesRecv))
		t.AddRowf("retransmits", snap.CoordWire.Retransmits)
		t.AddRowf("session resumes", snap.CoordWire.Resumes)
		t.AddRowf("corrupt frames seen", snap.CoordWire.CorruptFrames)
		t.AddRowf("spans dropped", snap.SpansDropped)
		if histo {
			exec, dwell, bw, del := co.Histograms()
			t.AddRowf("cluster event exec", exec.String())
			t.AddRowf("cluster queue dwell", dwell.String())
			t.AddRowf("cluster barrier wait", bw.String())
			t.AddRowf("cluster deliver", del.String())
		}
	}
	if ms != nil {
		// Self-probe: prove the live endpoint serves the same snapshot a
		// monitoring scrape would get.
		body, err := ms.Fetch()
		if err != nil {
			return fmt.Errorf("metrics self-probe: %w", err)
		}
		t.AddRowf("metrics self-probe", fmt.Sprintf("%d bytes", len(body)))
	}
	if tracePath != "" {
		var buf bytes.Buffer
		if err := co.WriteMergedTrace(&buf); err != nil {
			return err
		}
		// Strict re-parse before the bytes hit disk: a malformed merged
		// trace fails the run, not the later Perfetto import.
		events, tids, err := obs.ValidateChromeTrace(buf.Bytes())
		if err != nil {
			return fmt.Errorf("merged trace validation: %w", err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		t.AddRowf("merged trace", fmt.Sprintf("%s (%d events, %d tracks)", tracePath, events, len(tids)))
	}

	if len(forced) > 0 && c.Reconnects < len(forced) {
		return fmt.Errorf("%d scripted resets forced only %d reconnects", len(forced), c.Reconnects)
	}
	if rebalance && skewHot > 0 && c.Migrations == 0 {
		return fmt.Errorf("rebalance: the skewed run migrated nothing (imbalance never crossed the threshold)")
	}
	if verify {
		ref := parsim.NewPHOLDSkew(pholdLPs, 1, pholdLookahead, jobsPer, pholdRemote, pholdWork, seed, delayFactor, skewHot, skewFactor)
		ref.Run(horizon)
		want := ref.PerLPEvents()
		for i := range want {
			if perLP[i] != want[i] {
				return fmt.Errorf("verify: LP %d has %d events, fault-free run has %d (want %v, got %v)",
					i, perLP[i], want[i], want, perLP)
			}
		}
		t.AddRowf("verify", "identical to fault-free single-process run")
	}
	return nil
}

// parseResetAt parses a comma-separated list of coordinator message
// indices at which the injector force-closes the connection.
func parseResetAt(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -chaos-reset-at entry %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	sim := flag.String("sim", "monarc", "personality: bricks|optorsim|simgrid|gridsim|chicsim|monarc|phold|distphold")
	seed := flag.Uint64("seed", 1, "random seed")
	jobs := flag.Int("jobs", 0, "job/task count override (0 = personality default)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto) of the run to this file")
	histo := flag.Bool("histo", false, "print event-latency histograms after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	horizon := flag.Float64("horizon", 40, "phold: simulation end time")
	workers := flag.Int("workers", 4, "phold: parallel pool workers; distphold: TCP worker count (must divide the LPs)")
	ckptPath := flag.String("checkpoint", "", "phold: run to -checkpoint-at, write a snapshot to this file, and exit")
	ckptAt := flag.Float64("checkpoint-at", 0, "phold: window barrier to checkpoint at (0 = half the horizon; use a multiple of the lookahead)")
	resumePath := flag.String("resume", "", "phold: restore this snapshot before running to -horizon")
	verify := flag.Bool("verify", false, "phold/distphold: replay the run uninterrupted in-process and require identical results")
	delayFactor := flag.Float64("delay-factor", 4, "distphold: mean event spacing in lookaheads (large values make traffic sparse)")
	skipIdle := flag.Bool("skip-idle", false, "distphold: let the coordinator jump lookahead windows with no pending event anywhere")
	chaosSeed := flag.Uint64("chaos-seed", 1, "distphold: fault-injector seed")
	chaosDrop := flag.Float64("chaos-drop", 0, "distphold: per-message drop probability")
	chaosDup := flag.Float64("chaos-dup", 0, "distphold: per-message duplication probability")
	chaosReorder := flag.Float64("chaos-reorder", 0, "distphold: per-message reorder probability")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "distphold: per-message byte-corruption probability")
	chaosReset := flag.Float64("chaos-reset", 0, "distphold: per-message connection-reset probability")
	chaosDelay := flag.Duration("chaos-delay", 0, "distphold: fixed per-message delay")
	chaosJitter := flag.Duration("chaos-jitter", 0, "distphold: random per-message delay on top of -chaos-delay")
	chaosResetAt := flag.String("chaos-reset-at", "", "distphold: comma-separated coordinator message indices to force-reset at")
	obsEvery := flag.Int("obs-every", 0, "distphold: piggyback cluster telemetry every N windows (0 = off unless -trace/-histo/-metrics-addr)")
	metricsAddr := flag.String("metrics-addr", "", "distphold: serve live JSON cluster metrics + pprof on this address (e.g. 127.0.0.1:0)")
	rebalance := flag.Bool("rebalance", false, "distphold: adaptively migrate LPs between workers when load skews")
	rebalanceEvery := flag.Int("rebalance-every", 0, "distphold: planning cadence in executed windows (0 = 16 default)")
	imbalanceThresh := flag.Float64("imbalance-thresh", 0, "distphold: migrate only when max worker load > thresh * mean (0 = 1.25 default)")
	skewHot := flag.Int("skew-hot", 0, "distphold: make the lowest N LPs hot")
	skewFactor := flag.Float64("skew", 1, "distphold: hot LPs fire this many times as often")
	journalPath := flag.String("journal", "", "distphold: durable coordinator control-plane journal (enables crash-restart re-adoption)")
	threads := flag.Int("threads", 1, "distphold: intra-worker execution pool size per worker (results are bit-identical for any value)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "lssim: pprof:", err)
			}
		}()
	}

	// Personalities construct their engines internally, so the trace
	// recorder and histograms are injected through the engine's default
	// observer (sequential front-end wiring; see des.SetDefaultObserver).
	// distphold is the exception: its workers run concurrently in this
	// process, so it routes telemetry through the coordinator's
	// ClusterObs instead of a shared sequential recorder.
	var rec *obs.Recorder
	var met *obs.Metrics
	if (*trace != "" || *histo) && *sim != "distphold" {
		met = &obs.Metrics{}
		o := &des.Observer{Metrics: met}
		if *trace != "" {
			rec = obs.NewRecorder(1 << 18)
			o.Recorder = rec
		}
		des.SetDefaultObserver(o)
		defer des.SetDefaultObserver(nil)
	}

	t := metrics.NewTable(fmt.Sprintf("lssim: %s (seed %d)", *sim, *seed), "metric", "value")
	switch *sim {
	case "bricks":
		cfg := bricks.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.JobsPerClient = *jobs / cfg.Clients
		}
		r := bricks.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("makespan s", r.Makespan)
		t.AddRowf("mean response s", r.MeanResponse)
		t.AddRowf("mean wait s", r.MeanWait)
		t.AddRowf("server utilization", r.Utilization)
		t.AddRowf("WAN GB", r.WANBytesMoved/1e9)
	case "optorsim":
		cfg := optorsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := optorsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("mean job time s", r.MeanJobTime)
		t.AddRowf("local hit ratio", r.LocalHitRatio)
		t.AddRowf("replica pulls", r.Pulls)
		t.AddRowf("evictions", r.Evictions)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
	case "simgrid":
		cfg := simgrid.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Tasks = *jobs
		}
		r := simgrid.Run(cfg)
		t.AddRowf("tasks", r.Tasks)
		t.AddRowf("makespan s", r.Makespan)
		t.AddRowf("mean response s", r.MeanResponse)
		for i, n := range r.PerMachineJobs {
			t.AddRowf(fmt.Sprintf("machine %d tasks", i), n)
		}
	case "gridsim":
		cfg := gridsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := gridsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("completed", r.Completed)
		t.AddRowf("rejected", r.Rejected)
		t.AddRowf("deadline misses", r.DeadlineMisses)
		t.AddRowf("total spend", r.TotalSpend)
		t.AddRowf("mean response s", r.MeanResponse)
	case "chicsim":
		cfg := chicsim.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		r := chicsim.Run(cfg)
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("mean response s", r.MeanResponse)
		t.AddRowf("local hit ratio", r.LocalHitRatio)
		t.AddRowf("pushes", r.Pushes)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
	case "monarc":
		cfg := monarc.DefaultConfig()
		cfg.Seed = *seed
		if *jobs > 0 {
			cfg.Runs = *jobs
		}
		r := monarc.Run(cfg)
		t.AddRowf("RAW files produced", r.RawProduced)
		t.AddRowf("replicas shipped", r.Shipped)
		t.AddRowf("agent max delay s", r.AgentMaxDelay)
		t.AddRowf("reco jobs", r.RecoJobs)
		t.AddRowf("analysis jobs", r.AnalysisJobs)
		t.AddRowf("mean reco s", r.MeanRecoTime)
		t.AddRowf("mean analysis s", r.MeanAnaTime)
		t.AddRowf("T0 utilization", r.T0Utilization)
		t.AddRowf("WAN GB", r.WANBytes/1e9)
		t.AddRowf("DB queries", r.DBQueries)
	case "phold":
		if err := runPHOLD(t, *seed, *jobs, *horizon, *workers, *ckptPath, *ckptAt, *resumePath, *verify); err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
	case "distphold":
		ch := chaos.Config{
			Seed: *chaosSeed, Drop: *chaosDrop, Dup: *chaosDup,
			Reorder: *chaosReorder, Corrupt: *chaosCorrupt, Reset: *chaosReset,
			Delay: *chaosDelay, Jitter: *chaosJitter,
		}
		if err := runDistPHOLD(t, *seed, *jobs, *workers, *threads, *horizon, *delayFactor, *skipIdle, ch, *chaosResetAt, *verify, *obsEvery, *trace, *metricsAddr, *histo, *rebalance, *rebalanceEvery, *imbalanceThresh, *skewHot, *skewFactor, *journalPath); err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		// The cluster path has already written/validated the merged trace
		// and printed cluster histograms; suppress the sequential tail.
		*trace, *histo = "", false
	default:
		fmt.Fprintf(os.Stderr, "lssim: unknown personality %q\n", *sim)
		flag.Usage()
		os.Exit(2)
	}
	if *histo {
		t.AddRowf("event exec", met.Exec.String())
		t.AddRowf("queue dwell (sim ns)", met.Dwell.String())
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lssim:", err)
		os.Exit(1)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		track := obs.Track{Name: *sim, TID: 0, Rec: rec}
		if err := obs.WriteChromeTrace(f, track); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lssim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d spans, %d dropped)\n", *trace, rec.Len(), rec.Dropped())
	}
}
