// Command table1 regenerates the paper's Table 1 — "Design comparison
// of surveyed Grid simulation projects" — from the machine-readable
// taxonomy profiles the simulator personalities export, plus the
// pairwise-differences report of the critical analysis.
//
// Usage:
//
//	table1 [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	t1 := experiments.E1Table1()
	if *csv {
		if err := t1.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		return
	}
	if err := t1.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := experiments.E1Diffs().Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}
