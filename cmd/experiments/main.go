// Command experiments runs the reproduction experiments E1–E10 (see
// DESIGN.md for the index) and prints their paper-shaped tables.
//
// Usage:
//
//	experiments              # run everything at full size
//	experiments -run E7      # one experiment
//	experiments -quick       # smoke-test sizes
//	experiments -list        # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	one := flag.String("run", "", "run a single experiment by ID (e.g. E7)")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	svgDir := flag.String("svg", "", "also write SVG charts for the sweep experiments into this directory")
	benchJSON := flag.String("benchjson", "", "run the hot-path micro-benchmarks and write JSON results to this file, then exit")
	trace := flag.String("trace", "", "run a traced E5 federation and write Chrome trace-event JSON (Perfetto) to this file, then exit")
	histo := flag.Bool("histo", false, "run a traced E5 federation and print its latency histograms, then exit")
	monOut := flag.String("monout", "", "with -trace/-histo: also export the run's telemetry in the monitoring wire format to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}

	if *trace != "" || *histo {
		tb, err := experiments.ObserveE5(*trace, *monOut, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := tb.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *trace != "" {
			fmt.Println("wrote", *trace)
		}
		return
	}

	if *benchJSON != "" {
		results, err := experiments.RunBenchJSON(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-40s %12.1f ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		fmt.Println("wrote", *benchJSON)
		return
	}

	titles := experiments.Titles()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, titles[id])
		}
		return
	}

	ids := experiments.IDs()
	if *one != "" {
		ids = []string{*one}
	}
	for _, id := range ids {
		fmt.Printf("=== %s: %s\n", id, titles[id])
		start := time.Now()
		tables, err := experiments.Run(id, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, tb := range tables {
			if err := tb.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *svgDir != "" {
		files, err := experiments.WriteSVGReports(*svgDir, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
	}
}
