// Command lsnode runs one node of a TCP-distributed simulation: either
// the coordinator or a worker owning a subset of the logical
// processes. The model is the PHOLD benchmark (the standard workload
// of the parallel/distributed DES literature).
//
// Example — 8 LPs across two workers on one machine:
//
//	lsnode -mode coordinator -addr :9191 -lps 8 -workers 2 -horizon 200 &
//	lsnode -mode worker -addr localhost:9191 -own 0,1,2,3 &
//	lsnode -mode worker -addr localhost:9191 -own 4,5,6,7
//
// The same binary works across hosts; the run is deterministic for a
// given seed regardless of how LPs are partitioned.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/distsim"
	"repro/internal/metrics"
	"repro/internal/monitoring"
	"repro/internal/parsim"
	"repro/internal/partition"
)

func main() {
	mode := flag.String("mode", "", "coordinator | worker")
	addr := flag.String("addr", "localhost:9191", "listen (coordinator) or dial (worker) address")
	lps := flag.Int("lps", 8, "total logical processes (coordinator)")
	workers := flag.Int("workers", 2, "worker count to wait for (coordinator)")
	lookahead := flag.Float64("lookahead", 1.0, "synchronization lookahead")
	horizon := flag.Float64("horizon", 200, "simulation end time")
	seed := flag.Uint64("seed", 1, "base seed")
	own := flag.String("own", "", "comma-separated LP IDs this worker owns (worker)")
	jobs := flag.Int("jobs", 8, "PHOLD jobs per LP")
	remote := flag.Float64("remote", 0.2, "PHOLD remote-hop probability")
	work := flag.Int("work", 100, "PHOLD per-event synthetic work")
	timeout := flag.Float64("timeout", 0, "coordinator: per-frame receive deadline in seconds (0 = 30s default, negative disables)")
	ckptEvery := flag.Int("ckpt-every", 0, "coordinator: cluster checkpoint every N windows (0 = every window when fault tolerance is on)")
	maxRec := flag.Int("max-recoveries", 0, "coordinator: worker crashes to survive by rollback-recovery")
	ckptFile := flag.String("checkpoint", "", "coordinator: persist cluster checkpoints to this file (atomic)")
	resumeFile := flag.String("resume", "", "coordinator: resume from this cluster checkpoint when it exists")
	journalFile := flag.String("journal", "", "coordinator: durable control-plane journal; restart with the same path to re-adopt surviving workers")
	verify := flag.Bool("verify", false, "coordinator: replay the run single-process after it finishes and require identical per-LP results")
	connRetries := flag.Int("connect-retries", 0, "worker: dial/handshake attempts per connect cycle (0 = 8 default, negative = single attempt)")
	connBackoff := flag.Duration("connect-backoff", 0, "worker: base delay of the capped exponential dial backoff (0 = 50ms default)")
	maxPark := flag.Int("max-park", 0, "worker: parked reconnect attempts to survive a coordinator restart (0 = 64 default, negative disables parking)")
	skipIdle := flag.Bool("skip-idle", false, "coordinator: jump lookahead windows with no pending event anywhere")
	delayFactor := flag.Float64("delay-factor", 4, "PHOLD mean event spacing in lookaheads (all nodes must agree)")
	obsEvery := flag.Int("obs-every", 0, "coordinator: collect cluster telemetry, piggybacked every N windows (0 = off)")
	obsSpans := flag.Int("obs-spans", 0, "coordinator: per-track trace ring capacity (0 = default)")
	tracePath := flag.String("trace", "", "coordinator: write merged cluster Chrome trace to this file (implies -obs-every 1)")
	metricsAddr := flag.String("metrics-addr", "", "serve live JSON metrics + pprof on this address (both modes)")
	rebalance := flag.Bool("rebalance", false, "coordinator: adaptively migrate LPs between workers when load skews")
	rebalanceEvery := flag.Int("rebalance-every", 0, "coordinator: rebalance planning cadence in executed windows (0 = 16 default)")
	imbalanceThresh := flag.Float64("imbalance-thresh", 0, "coordinator: migrate only when max worker load > thresh * mean (0 = 1.25 default)")
	skewHot := flag.Int("skew-hot", 0, "PHOLD: make the lowest N LPs hot (all nodes must agree)")
	skewFactor := flag.Float64("skew", 1, "PHOLD: hot LPs fire this many times as often (all nodes must agree)")
	hotHoldNs := flag.Int("hot-hold-ns", 0, "worker: extra wall ns a hot LP holds its worker per event (load shaping only)")
	threads := flag.Int("threads", 1, "worker: intra-worker execution pool size; LPs run across this many goroutines per window (results are bit-identical for any value)")
	flag.Parse()

	switch *mode {
	case "coordinator":
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("lsnode: coordinating %d LPs over %d workers on %s\n", *lps, *workers, ln.Addr())
		c := distsim.NewCoordinator(*lps, *lookahead, *horizon, *seed)
		if *timeout != 0 {
			c.Timeout = time.Duration(*timeout * float64(time.Second))
		}
		c.CheckpointEvery = *ckptEvery
		c.MaxRecoveries = *maxRec
		c.CheckpointPath = *ckptFile
		c.ResumePath = *resumeFile
		c.JournalPath = *journalFile
		c.SkipIdle = *skipIdle
		if *rebalance {
			c.Rebalance = &partition.Greedy{Threshold: *imbalanceThresh}
			c.RebalanceEvery = *rebalanceEvery
		}
		if *tracePath != "" && *obsEvery == 0 {
			*obsEvery = 1
		}
		var co *distsim.ClusterObs
		if *obsEvery > 0 {
			co = c.EnableObservability(*obsEvery, *obsSpans)
		}
		if *metricsAddr != "" {
			if co == nil {
				co = c.EnableObservability(4, 0)
			}
			ms, err := monitoring.ServeMetrics(*metricsAddr, func() any { return co.Snapshot() })
			if err != nil {
				fatal(err)
			}
			defer ms.Close()
			fmt.Printf("lsnode: metrics on http://%s/metrics\n", ms.Addr())
		}
		if err := c.Serve(ln, *workers); err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			if err := co.WriteMergedTrace(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("lsnode: merged cluster trace written to %s\n", *tracePath)
		}
		t := metrics.NewTable("Distributed run complete", "metric", "value")
		t.AddRowf("windows", c.Windows)
		t.AddRowf("windows skipped", c.WindowsSkipped)
		t.AddRowf("events routed", c.EventsRouted)
		t.AddRowf("recoveries", c.Recoveries)
		if *journalFile != "" {
			t.AddRowf("workers readopted", c.Readopted)
		}
		if *rebalance {
			t.AddRowf("migrations", c.Migrations)
		}
		if c.StatsIncomplete {
			t.AddRowf("stats incomplete", true)
		}
		if co != nil {
			snap := co.Snapshot()
			t.AddRowf("frames sent/recv", fmt.Sprintf("%d/%d", snap.CoordWire.FramesSent, snap.CoordWire.FramesRecv))
			t.AddRowf("barrier wait p99", fmt.Sprintf("%.0fns", snap.BarrierWait.P99Ns))
			t.AddRowf("spans dropped", snap.SpansDropped)
		}
		var executed, sent uint64
		var counts []uint64
		perLP := map[int]uint64{}
		for _, ws := range c.WorkerStats {
			executed += ws.EventsExecuted
			sent += ws.Sent
			for lp, n := range ws.PerLPCounts {
				perLP[lp] = n
			}
		}
		for lp := 0; lp < *lps; lp++ {
			counts = append(counts, perLP[lp])
		}
		t.AddRowf("engine events", executed)
		t.AddRowf("messages sent", sent)
		t.AddRowf("per-LP model events", fmt.Sprint(counts))
		if *verify {
			// The distributed run must match a single-process replay of the
			// same model bit for bit — even when it rode out a coordinator
			// crash-restart, worker recoveries, or live migrations. Every
			// node's PHOLD flags must agree for the reference to be valid.
			ref := parsim.NewPHOLDSkew(*lps, 1, *lookahead, *jobs, *remote, *work, *seed, *delayFactor, *skewHot, *skewFactor)
			ref.Run(*horizon)
			want := ref.PerLPEvents()
			for lp := range want {
				if counts[lp] != want[lp] {
					fatal(fmt.Errorf("verify: LP %d has %d events, single-process run has %d (want %v, got %v)",
						lp, counts[lp], want[lp], want, counts))
				}
			}
			t.AddRowf("verify", "identical to single-process run")
		}
		if err := t.Write(os.Stdout); err != nil {
			fatal(err)
		}
	case "worker":
		if *own == "" {
			fatal(fmt.Errorf("worker needs -own LP list"))
		}
		var ids []int
		for _, part := range strings.Split(*own, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -own entry %q: %w", part, err))
			}
			ids = append(ids, id)
		}
		w := distsim.NewWorker(ids...)
		w.Threads = *threads
		distsim.InstallPHOLDSkew(w, *lps, *jobs, *remote, *work, *delayFactor, *skewHot, *skewFactor, *hotHoldNs)
		// A worker started before its coordinator retries the dial with
		// capped exponential backoff instead of exiting immediately.
		w.ConnectRetries = *connRetries
		w.ConnectBackoff = *connBackoff
		// A worker that loses its coordinator parks in a bounded
		// reconnect loop so a restarted coordinator can re-adopt it.
		w.MaxPark = *maxPark
		if *metricsAddr != "" {
			ms, err := monitoring.ServeMetrics(*metricsAddr, func() any { return w.WireSnapshot() })
			if err != nil {
				fatal(err)
			}
			defer ms.Close()
			fmt.Printf("lsnode: metrics on http://%s/metrics\n", ms.Addr())
		}
		if *threads > 1 {
			fmt.Printf("lsnode: worker owning LPs %v dialing %s (%d threads)\n", ids, *addr, *threads)
		} else {
			fmt.Printf("lsnode: worker owning LPs %v dialing %s\n", ids, *addr)
		}
		if err := w.Run(*addr); err != nil {
			if errors.Is(err, distsim.ErrCoordinatorLost) {
				// The park budget ran out: report the local progress that
				// would otherwise die with the process, then fail.
				st := w.Stats()
				fmt.Fprintf(os.Stderr, "lsnode: parked out with %d events executed locally (incomplete)\n", st.EventsExecuted)
			}
			fatal(err)
		}
		fmt.Println("lsnode: worker done")
	default:
		fmt.Fprintln(os.Stderr, "lsnode: -mode must be coordinator or worker")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsnode:", err)
	os.Exit(1)
}
