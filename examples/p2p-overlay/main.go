// P2P overlay: a Chord-like DHT and an epidemic gossip protocol over
// the framework's network fabric — the "P2P networks" corner of the
// taxonomy's scope axis.
//
// Part 1 runs DHT puts/gets from random peers and reports the O(log n)
// routing cost. Part 2 disseminates a rumor epidemically and prints
// the coverage curve. Both pay real simulated network time per hop.
package main

import (
	"fmt"
	"os"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/topology"
)

func main() {
	dhtStudy()
	gossipStudy()
}

// dhtStudy measures lookup hop counts across overlay sizes.
func dhtStudy() {
	t := metrics.NewTable("Chord-like DHT: lookup cost vs overlay size",
		"peers", "lookups", "mean hops", "2*log2(n) bound", "sim time s")
	for _, n := range []int{8, 16, 32, 64, 128} {
		e := des.NewEngine(des.WithSeed(11))
		g := topology.P2PRing(e, n, topology.SiteSpec{}, 10e6, 0.002)
		net := netsim.NewNetwork(e, g.Topo)
		ring := p2p.NewRing(e, net, g.Sites, 24)
		src := e.Stream("keys")
		e.Spawn("client", func(p *des.Process) {
			// Store then retrieve 100 keys from random peers.
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("object-%04d", i)
				from := ring.Peers()[src.Intn(n)]
				ring.Put(p, from, key, []byte("v"))
			}
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("object-%04d", i)
				from := ring.Peers()[src.Intn(n)]
				if v := ring.Get(p, from, key); v == nil {
					panic("lost key " + key)
				}
			}
		})
		e.Run()
		bound := 0.0
		for m := 1; m < n; m *= 2 {
			bound += 2
		}
		t.AddRowf(n, ring.Lookups, ring.MeanHops(), bound, e.Now())
	}
	must(t.Write(os.Stdout))
	fmt.Println()
}

// gossipStudy disseminates a rumor and prints the coverage curve.
func gossipStudy() {
	e := des.NewEngine(des.WithSeed(3))
	g := topology.P2PRing(e, 64, topology.SiteSpec{}, 10e6, 0.002)
	net := netsim.NewNetwork(e, g.Topo)
	ring := p2p.NewRing(e, net, g.Sites, 24)
	gsp := p2p.NewGossip(ring, e.Stream("gossip"), 2, 1.0)
	rounds := gsp.Run(ring.Peers()[0], 100)

	t := metrics.NewTable("Epidemic gossip (64 peers, fanout 2)", "metric", "value")
	t.AddRowf("rounds to full coverage", rounds)
	t.AddRowf("messages", gsp.Messages)
	must(t.Write(os.Stdout))
	fmt.Println()
	fmt.Print(metrics.AsciiPlot("Coverage vs round", 48, 12, &gsp.Coverage))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
