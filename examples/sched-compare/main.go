// Scheduling comparison: local queue disciplines on one cluster, then
// grid-level brokering policies, then GridSim-style economy goals —
// one tour through the middleware layer of the taxonomy using the
// public facade API.
package main

import (
	"fmt"
	"os"

	lsds "repro"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/simulators/gridsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	disciplines()
	brokering()
	economy()
}

// disciplines contrasts FCFS, SJF, EDF and EASY backfilling on one
// 8-core cluster fed by a bursty arrival process.
func disciplines() {
	t := metrics.NewTable("Local queue disciplines (8 cores, 300 mixed jobs)",
		"discipline", "mean wait s", "mean response s", "makespan s", "utilization")
	for _, d := range []scheduler.Discipline{
		scheduler.FCFS, scheduler.SJF, scheduler.EDF, scheduler.EASYBackfill,
	} {
		sim := lsds.New(lsds.Config{Seed: 42})
		site := sim.Grid.AddSite("cluster", lsds.SiteSpec{Cores: 8, CoreSpeed: 1e9})
		cluster := sim.AddCluster(site, d)
		src := sim.Engine.Stream("jobs")
		mix := workload.NewMix(src,
			workload.JobClass{Name: "short", Weight: 6, Ops: func() float64 { return src.Exp(1 / 2e9) }},
			workload.JobClass{Name: "long", Weight: 1, Ops: func() float64 { return src.Exp(1 / 40e9) }},
			workload.JobClass{Name: "wide", Weight: 1, Ops: func() float64 { return src.Exp(1 / 10e9) }, Cores: 4},
		)
		var wait, response metrics.Summary
		makespan := 0.0
		act := &workload.Activity{
			Name:         "arrivals",
			Interarrival: workload.Poisson(src, 0.8),
			MaxJobs:      300,
			Emit: func(i int) {
				j := mix.Draw()
				j.Deadline = sim.Engine.Now() + 120
				cluster.Submit(j, func(j *scheduler.Job) {
					wait.Observe(j.WaitTime())
					response.Observe(j.ResponseTime())
					if j.Finished > makespan {
						makespan = j.Finished
					}
				})
			},
		}
		act.Start(sim.Engine)
		sim.Run()
		t.AddRowf(d.String(), wait.Mean(), response.Mean(), makespan, cluster.Utilization())
	}
	must(t.Write(os.Stdout))
	fmt.Println()
}

// brokering contrasts grid-level placement policies over a
// heterogeneous three-site grid.
func brokering() {
	t := metrics.NewTable("Brokering policies (3 heterogeneous sites, 200 jobs)",
		"policy", "mean response s", "makespan s")
	policies := []scheduler.Policy{
		&scheduler.RoundRobinPolicy{},
		scheduler.LeastLoadedPolicy{},
		scheduler.MCTPolicy{},
	}
	for _, pol := range policies {
		sim := lsds.New(lsds.Config{Seed: 7})
		origin := sim.Grid.AddSite("users", lsds.SiteSpec{})
		speeds := []float64{5e8, 1e9, 4e9}
		for i, sp := range speeds {
			site := sim.Grid.AddSite(fmt.Sprintf("site%d", i),
				topology.SiteSpec{Cores: 4, CoreSpeed: sp})
			sim.Grid.Link(origin, site, 100e6, 0.01)
			sim.AddCluster(site, scheduler.FCFS)
		}
		sim.Grid.Topo.ComputeRoutes()
		broker := sim.NewBroker(pol.Name(), pol)
		var response metrics.Summary
		makespan := 0.0
		broker.OnDone(func(j *scheduler.Job) {
			response.Observe(j.ResponseTime())
			if j.Finished > makespan {
				makespan = j.Finished
			}
		})
		src := sim.Engine.Stream("arrivals")
		act := &workload.Activity{
			Name:         "users",
			Interarrival: workload.Poisson(src, 2),
			MaxJobs:      200,
			Emit: func(i int) {
				broker.Submit(&scheduler.Job{
					ID: i, Name: "job", Ops: src.Exp(1 / 4e9),
					InputBytes: 1e6, Origin: origin,
				})
			},
		}
		act.Start(sim.Engine)
		sim.Run()
		t.AddRowf(pol.Name(), response.Mean(), makespan)
	}
	must(t.Write(os.Stdout))
	fmt.Println()
}

// economy runs the GridSim personality under both optimization goals.
func economy() {
	t := metrics.NewTable("Economy brokering (deadline+budget, 200 gridlets)",
		"goal", "mean response s", "total spend", "rejected", "deadline misses")
	for _, goal := range []scheduler.EconomyGoal{scheduler.TimeOptimize, scheduler.CostOptimize} {
		cfg := gridsim.DefaultConfig()
		cfg.Goal = goal
		res := gridsim.Run(cfg)
		name := "time-optimize"
		if goal == scheduler.CostOptimize {
			name = "cost-optimize"
		}
		t.AddRowf(name, res.MeanResponse, res.TotalSpend, res.Rejected, res.DeadlineMisses)
	}
	must(t.Write(os.Stdout))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
