// Quickstart: simulate an M/M/1 queue with the process-oriented API
// and validate the measurement against queueing theory — the
// ten-minute introduction to the framework's kernel, and the smallest
// instance of the paper's validation methodology (claim C5).
package main

import (
	"fmt"
	"os"

	lsds "repro"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/queueing"
)

func main() {
	const (
		lambda    = 0.8 // arrivals per second
		mu        = 1.0 // services per second
		customers = 100000
	)

	sim := lsds.New(lsds.DefaultConfig())
	e := sim.Engine
	arrivals := e.Stream("arrivals")
	services := e.Stream("services")

	server := e.NewResource("server", 1)
	var sojourn metrics.Summary
	var inSystem metrics.TimeWeighted

	population := 0
	// The arrival generator is itself a simulated process: it spawns
	// one customer process per arrival.
	e.Spawn("generator", func(p *des.Process) {
		for i := 0; i < customers; i++ {
			p.Hold(arrivals.Exp(lambda))
			population++
			inSystem.Set(e.Now(), float64(population))
			e.Spawn(fmt.Sprintf("cust%06d", i), func(c *des.Process) {
				arrived := c.Now()
				server.Acquire(c, 1)
				c.Hold(services.Exp(mu))
				server.Release(1)
				population--
				inSystem.Set(e.Now(), float64(population))
				sojourn.Observe(c.Now() - arrived)
			})
		}
	})
	end := sim.Run()

	theory, err := queueing.NewMM1(lambda, mu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	t := metrics.NewTable("M/M/1 quickstart: simulation vs theory",
		"measure", "simulated", "analytic")
	t.AddRowf("mean sojourn W", sojourn.Mean(), theory.W)
	t.AddRowf("mean population L", inSystem.Mean(end), theory.L)
	t.AddRowf("server utilization", server.Utilization(), theory.Rho)
	t.AddRowf("customers", sojourn.N(), customers)
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nsimulated %v time units, %d events\n", end, e.Stats().Executed)
}
