// LHC tier model: the MONARC personality's T0/T1 data replication
// study in miniature — the experiment behind the paper's citation of
// Legrand et al. (2005): at 2.5 Gbps the replication agent cannot keep
// up with CMS/ATLAS-scale data taking; after the upgrade it can.
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/simulators/monarc"
)

func main() {
	links := []float64{0.622, 1.25, 2.5, 10, 30}
	points := monarc.RunTierStudy(1, links, 30, 700)

	t := metrics.NewTable("T0 -> T1 replication vs uplink capacity (30 runs, 4 T1 centres)",
		"link Gbps", "delivered %", "backlog", "worst delay s", "verdict")
	for _, p := range points {
		verdict := "INSUFFICIENT"
		if p.Sufficient {
			verdict = "sufficient"
		}
		t.AddRow(
			fmt.Sprintf("%.3g", p.LinkGbps),
			fmt.Sprintf("%.1f", p.DeliveredPct),
			fmt.Sprintf("%d", p.Backlog),
			fmt.Sprintf("%.1f", p.MaxDelay),
			verdict)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Plot delivery percentage against capacity.
	var s metrics.Series
	s.Name = "delivered %"
	for _, p := range points {
		s.Append(p.LinkGbps, p.DeliveredPct)
	}
	fmt.Println()
	fmt.Print(metrics.AsciiPlot("Delivery vs link capacity (Gbps)", 48, 12, &s))

	// And one full MONARC run with analysis jobs at the T1s.
	cfg := monarc.DefaultConfig()
	cfg.LHC.RunPeriod = 20
	cfg.Runs = 10
	cfg.AnalysisJobs = 30
	res := monarc.Run(cfg)
	full := metrics.NewTable("\nFull tier-model run (production + reconstruction + analysis)",
		"metric", "value")
	full.AddRowf("RAW produced", res.RawProduced)
	full.AddRowf("replicas shipped", res.Shipped)
	full.AddRowf("reconstruction jobs", res.RecoJobs)
	full.AddRowf("analysis jobs", res.AnalysisJobs)
	full.AddRowf("mean analysis time s", res.MeanAnaTime)
	full.AddRowf("DB queries", res.DBQueries)
	full.AddRowf("WAN GB moved", res.WANBytes/1e9)
	if err := full.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
