// Fault tolerance: the same job stream run on a reliable cluster and
// on clusters with Weibull-distributed crashes (with and without
// retry) — failure injection over the scheduling substrate, the churn
// dimension that makes large scale distributed systems hard in the
// first place.
package main

import (
	"fmt"
	"os"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

const (
	jobs    = 400
	jobOps  = 2e9
	cores   = 8
	speed   = 1e9
	rate    = 1.5 // arrivals per second
	horizon = 4000.0
)

func main() {
	t := metrics.NewTable("Job stream under failure injection (400 jobs, 8 cores)",
		"scenario", "completed", "lost", "retries", "failures", "downtime s", "mean response s")

	run := func(name string, mttf float64, withRetry bool) {
		e := des.NewEngine(des.WithSeed(7))
		cluster := scheduler.NewCluster(e, "c", cores, speed, scheduler.FCFS)
		var inj *faults.Injector
		if mttf > 0 {
			inj = faults.NewInjector(e, cluster, 1.0, mttf, 15)
			inj.Start(horizon)
		}
		var response metrics.Summary
		completed, lost := 0, 0
		var harness *faults.RetryHarness
		onDone := func(j *scheduler.Job) {
			if j.Failed {
				lost++
				return
			}
			completed++
			response.Observe(j.ResponseTime())
		}
		if withRetry {
			harness = faults.NewRetryHarness(cluster, 50, onDone)
		}
		src := e.Stream("arrivals")
		act := &workload.Activity{
			Name:         "stream",
			Interarrival: workload.Poisson(src, rate),
			MaxJobs:      jobs,
			Emit: func(i int) {
				j := &scheduler.Job{ID: i, Name: "job", Ops: src.Exp(1 / jobOps)}
				if withRetry {
					harness.Submit(j)
				} else {
					cluster.Submit(j, onDone)
				}
			},
		}
		act.Start(e)
		e.RunUntil(horizon)
		var failures uint64
		downtime := 0.0
		retries := uint64(0)
		if inj != nil {
			failures = inj.Failures
			downtime = inj.Downtime
		}
		if harness != nil {
			retries = harness.Retries
		}
		t.AddRowf(name, completed, lost, retries, failures, downtime, response.Mean())
	}

	run("reliable", 0, false)
	run("crashy, no retry", 120, false)
	run("crashy, retry", 120, true)
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nWeibull(1.0) failures, mean TTF 120 s, lognormal repairs of mean 15 s.")
}
