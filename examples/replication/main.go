// Replication strategies head-to-head: OptorSim's pull model (LRU and
// economic optimizers) against ChicagoSim's push model and the
// no-replication baseline, across file-popularity skews — the
// comparison at the heart of the paper's Data Grid simulator analysis.
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/simulators/chicsim"
	"repro/internal/simulators/optorsim"
)

func main() {
	t := metrics.NewTable("Replication strategy comparison (5 sites, 80 files, 200 jobs)",
		"zipf s", "strategy", "hit ratio", "WAN GB", "mean job s")

	hitSeries := map[string]*metrics.Series{
		"none": {Name: "none"}, "pull-lru": {Name: "pull-lru"}, "push": {Name: "push"},
	}
	for _, s := range []float64{0, 0.4, 0.8, 1.2, 1.6} {
		oc := optorsim.DefaultConfig()
		oc.Sites, oc.Files, oc.Jobs = 5, 80, 200
		oc.ZipfS = s

		oc.Optimizer = optorsim.NoReplication
		none := optorsim.Run(oc)
		t.AddRow(fmt.Sprintf("%.1f", s), "none",
			fmt.Sprintf("%.3f", none.LocalHitRatio),
			fmt.Sprintf("%.1f", none.WANBytes/1e9),
			fmt.Sprintf("%.1f", none.MeanJobTime))
		hitSeries["none"].Append(s, none.LocalHitRatio)

		oc.Optimizer = optorsim.AlwaysLRU
		pull := optorsim.Run(oc)
		t.AddRow(fmt.Sprintf("%.1f", s), "pull-lru",
			fmt.Sprintf("%.3f", pull.LocalHitRatio),
			fmt.Sprintf("%.1f", pull.WANBytes/1e9),
			fmt.Sprintf("%.1f", pull.MeanJobTime))
		hitSeries["pull-lru"].Append(s, pull.LocalHitRatio)

		oc.Optimizer = optorsim.Economic
		econ := optorsim.Run(oc)
		t.AddRow(fmt.Sprintf("%.1f", s), "pull-economic",
			fmt.Sprintf("%.3f", econ.LocalHitRatio),
			fmt.Sprintf("%.1f", econ.WANBytes/1e9),
			fmt.Sprintf("%.1f", econ.MeanJobTime))

		cc := chicsim.DefaultConfig()
		cc.Sites, cc.Files, cc.Jobs = 5, 80, 200
		cc.ZipfS = s
		cc.Placement = chicsim.ComputeAware
		cc.Push = true
		cc.PushThresh = 3
		cc.PushFanout = 2
		push := chicsim.Run(cc)
		t.AddRow(fmt.Sprintf("%.1f", s), "push",
			fmt.Sprintf("%.3f", push.LocalHitRatio),
			fmt.Sprintf("%.1f", push.WANBytes/1e9),
			fmt.Sprintf("%.1f", push.MeanResponse))
		hitSeries["push"].Append(s, push.LocalHitRatio)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(metrics.AsciiPlot("Local hit ratio vs Zipf skew", 48, 12,
		hitSeries["none"], hitSeries["pull-lru"], hitSeries["push"]))
}
