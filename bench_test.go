package lsds

// The benchmark harness: one benchmark per reproduced exhibit (the
// paper's Table 1 and the quantitative claims C1–C6, indexed E1–E10 in
// DESIGN.md). Each benchmark regenerates the corresponding rows;
// `go test -bench . -benchmem` therefore reproduces the full
// evaluation. The experiment drivers in internal/experiments print the
// actual tables (see cmd/experiments).

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/des"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/parsim"
	"repro/internal/rng"
	"repro/internal/simulators/bricks"
	"repro/internal/simulators/chicsim"
	"repro/internal/simulators/gridsim"
	"repro/internal/simulators/monarc"
	"repro/internal/simulators/optorsim"
	"repro/internal/simulators/simgrid"
)

// BenchmarkE1Table1 regenerates the paper's Table 1 from the taxonomy
// profiles.
func BenchmarkE1Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E1Table1(); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE2EventVsTimeDriven reproduces claim C1: the same sparse
// event set executed event-driven versus time-driven at shrinking tick
// sizes. The time-driven cost grows as 1/dt; the event-driven cost is
// flat.
func BenchmarkE2EventVsTimeDriven(b *testing.B) {
	const n, meanGap = 5000, 10.0
	build := func(schedule func(at float64, fn func())) {
		src := rng.New(7)
		at := 0.0
		for i := 0; i < n; i++ {
			at += src.Exp(1 / meanGap)
			schedule(at, func() {})
		}
	}
	horizon := float64(n) * meanGap * 1.2
	// Model construction (n Schedule calls) is excluded from the
	// timing: the comparison is about execution cost.
	b.Run("event-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := des.NewEngine()
			build(func(at float64, fn func()) { e.At(at, fn) })
			b.StartTimer()
			e.RunUntil(horizon)
		}
	})
	for _, dt := range []float64{10, 1, 0.1} {
		b.Run(fmt.Sprintf("time-driven/dt=%g", dt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				td := des.NewTimeDriven(dt)
				build(func(at float64, fn func()) { td.At(at, fn) })
				b.StartTimer()
				td.RunUntil(horizon)
			}
		})
	}
}

// BenchmarkE3QueueStructures reproduces claim C2 with the classic hold
// model: per-operation cost of each future-event-list structure at
// several pending-event populations. The calendar/ladder O(1)
// structures overtake the O(log n) heap as n grows; the sorted list
// degrades fastest.
func BenchmarkE3QueueStructures(b *testing.B) {
	for _, n := range []int{100, 10000, 100000} {
		for _, k := range eventq.Kinds() {
			b.Run(fmt.Sprintf("%s/n=%d", k, n), func(b *testing.B) {
				q := eventq.New(k)
				src := rng.New(11)
				var seq uint64
				for i := 0; i < n; i++ {
					seq++
					q.Push(eventq.Item{Time: src.Exp(1), Seq: seq})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it, _ := q.Pop()
					seq++
					q.Push(eventq.Item{Time: it.Time + src.Exp(1), Seq: seq})
				}
			})
		}
	}
}

// BenchmarkE3aCalendarResize is the bucket-adaptation ablation.
func BenchmarkE3aCalendarResize(b *testing.B) {
	for _, resizable := range []bool{true, false} {
		b.Run(fmt.Sprintf("resizable=%v", resizable), func(b *testing.B) {
			q := eventq.NewCalendar()
			q.SetResizable(resizable)
			src := rng.New(11)
			var seq uint64
			for i := 0; i < 10000; i++ {
				seq++
				q.Push(eventq.Item{Time: src.Exp(1), Seq: seq})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it, _ := q.Pop()
				seq++
				q.Push(eventq.Item{Time: it.Time + src.Exp(1), Seq: seq})
			}
		})
	}
}

// BenchmarkE4ThreadMapping reproduces claim C3: goroutine-per-job
// active objects versus closures multiplexed on the engine context.
func BenchmarkE4ThreadMapping(b *testing.B) {
	const jobs, holds = 2000, 5
	b.Run("goroutine-per-job", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := des.NewEngine(des.WithSeed(3))
			src := e.Stream("w")
			for j := 0; j < jobs; j++ {
				e.Spawn("job", func(p *des.Process) {
					for h := 0; h < holds; h++ {
						p.Hold(src.Exp(1))
					}
				})
			}
			e.Run()
		}
	})
	b.Run("multiplexed-closures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := des.NewEngine(des.WithSeed(3))
			src := e.Stream("w")
			for j := 0; j < jobs; j++ {
				remaining := holds
				var step func()
				step = func() {
					remaining--
					if remaining > 0 {
						e.Schedule(src.Exp(1), step)
					}
				}
				e.Schedule(src.Exp(1), step)
			}
			e.Run()
		}
	})
}

// BenchmarkE5ParallelEngine reproduces claim C4 with PHOLD: worker
// scaling of the conservative federation.
func BenchmarkE5ParallelEngine(b *testing.B) {
	counts := []int{1, 2, 4}
	if runtime.NumCPU() >= 8 {
		counts = append(counts, 8)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ph := parsim.NewPHOLD(8, w, 1.0, 16, 0.1, 30000, 17)
				ph.Run(40)
			}
		})
	}
}

// BenchmarkE5aLookahead is the synchronization-granularity ablation.
func BenchmarkE5aLookahead(b *testing.B) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	for _, la := range []float64{0.25, 1, 4} {
		b.Run(fmt.Sprintf("lookahead=%g", la), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ph := parsim.NewPHOLD(8, workers, la, 8, 0.1, 200, 23)
				ph.Run(50)
			}
		})
	}
}

// BenchmarkE6Validation reproduces claim C5: the queueing-theory
// validation suite (M/M/1, M/M/c, M/D/1, M/G/1 versus closed form).
func BenchmarkE6Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.E6Validation(40000); len(tbl.Rows) == 0 {
			b.Fatal("empty validation table")
		}
	}
}

// BenchmarkE7TierStudy reproduces claim C6: one sweep point of the
// T0/T1 link-capacity study per sub-benchmark.
func BenchmarkE7TierStudy(b *testing.B) {
	for _, gbps := range []float64{2.5, 10, 30} {
		b.Run(fmt.Sprintf("link=%gGbps", gbps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := monarc.RunTierStudy(1, []float64{gbps}, 15, 400)
				if len(pts) != 1 {
					b.Fatal("missing point")
				}
			}
		})
	}
}

// BenchmarkE7aGranularity is the network-fidelity ablation: identical
// transfers under the flow-level and packet-level fabrics.
func BenchmarkE7aGranularity(b *testing.B) {
	run := func(b *testing.B, packet bool) {
		for i := 0; i < b.N; i++ {
			cfg := optorsim.DefaultConfig()
			cfg.Sites, cfg.Files, cfg.Jobs = 3, 20, 20
			_ = packet // granularity exercised in experiments.E7aGranularity
			optorsim.Run(cfg)
		}
	}
	b.Run("flow", func(b *testing.B) { run(b, false) })
	b.Run("tables", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tbl := experiments.E7aGranularity(4, 2e6); len(tbl.Rows) != 2 {
				b.Fatal("granularity table")
			}
		}
	})
}

// BenchmarkE8CentralVsTier regenerates the central-vs-tier comparison.
func BenchmarkE8CentralVsTier(b *testing.B) {
	b.Run("central", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := bricks.DefaultConfig()
			cfg.Clients, cfg.JobsPerClient = 4, 10
			bricks.Run(cfg)
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tbl := experiments.E8CentralVsTier([]int{2, 4}); len(tbl.Rows) != 4 {
				b.Fatal("central-vs-tier table")
			}
		}
	})
}

// BenchmarkE9PullVsPush regenerates the replication-strategy rows.
func BenchmarkE9PullVsPush(b *testing.B) {
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := optorsim.DefaultConfig()
			cfg.Sites, cfg.Files, cfg.Jobs = 4, 40, 60
			optorsim.Run(cfg)
		}
	})
	b.Run("push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := chicsim.DefaultConfig()
			cfg.Sites, cfg.Files, cfg.Jobs = 4, 40, 60
			chicsim.Run(cfg)
		}
	})
}

// BenchmarkE10Brokering regenerates the broker-strategy comparison.
func BenchmarkE10Brokering(b *testing.B) {
	b.Run("simgrid-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := simgrid.DefaultConfig()
			cfg.Tasks = 60
			simgrid.Run(cfg)
		}
	})
	b.Run("simgrid-minmin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := simgrid.DefaultConfig()
			cfg.Tasks = 60
			cfg.Strategy = simgrid.CompileTimeMinMin
			simgrid.Run(cfg)
		}
	})
	b.Run("gridsim-economy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := gridsim.DefaultConfig()
			cfg.Jobs = 60
			gridsim.Run(cfg)
		}
	})
}
