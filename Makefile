# lsds build/verify entry points. `make tier1` is the gate CI runs.

GO ?= go
TRACE_OUT ?= /tmp/lsds_trace_e5.json
CKPT_OUT ?= /tmp/lsds_phold.ckpt

.PHONY: all build test tier1 vet race bench benchjson fuzz trace-smoke checkpoint-smoke chaos-smoke dist-smoke obs-smoke balance-smoke crash-smoke threads-smoke clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with real concurrency: the parallel
# federation, the shared execution pool, the TCP-distributed engine,
# the fault injector, the engine they drive, and the
# optimistic/checkpoint layers they build on.
race:
	$(GO) test -race ./internal/parsim/... ./internal/pool/... ./internal/des/... ./internal/distsim/... ./internal/chaos/... ./internal/optsim/... ./internal/checkpoint/...

# tier1 is the acceptance gate: build + full tests, plus vet and the
# race detector over the concurrent packages.
tier1: build test vet race

bench:
	$(GO) test -bench 'E3|PHOLD|Federation|ScheduleExecute' -benchmem -run '^$$' ./...

# Machine-readable hot-path allocation report (includes the PR-10
# intra-worker pool cases: WorkerWindowParallel dense/skewed at pool
# widths 1/2/4; see BENCH_8.json).
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_8.json

# Short fuzz pass over the wire codec: arbitrary bytes must decode to
# an error or a valid frame — never a panic or an absurd allocation.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalFrame -fuzztime 10s ./internal/distsim/

# trace-smoke runs a quick traced E5 federation and validates the
# Chrome trace output: ObserveE5 re-reads the written file through a
# strict JSON parser and fails if it does not parse or is missing
# tracks, so this target is a true end-to-end check of the exporter.
trace-smoke:
	$(GO) run ./cmd/experiments -quick -trace $(TRACE_OUT)
	rm -f $(TRACE_OUT)

# checkpoint-smoke is the end-to-end fault-tolerance check: a PHOLD run
# is checkpointed at a window barrier, resumed in a second process, and
# -verify replays the whole run uninterrupted and fails on any
# divergence; then the kill-a-worker recovery e2e runs under -race.
checkpoint-smoke:
	$(GO) run ./cmd/lssim -sim phold -checkpoint $(CKPT_OUT)
	$(GO) run ./cmd/lssim -sim phold -resume $(CKPT_OUT) -verify
	rm -f $(CKPT_OUT)
	$(GO) test -race -count=1 -run 'TestKillWorkerMidWindowRecovers|TestCoordinatorFileResume' ./internal/distsim/

# chaos-smoke is the end-to-end robustness check: a 100-window
# distributed PHOLD run over real TCP with 5% of all messages dropped
# in both directions plus two scripted connection resets (forced
# session-resume reconnects), where -verify replays the run fault-free
# in a single process and fails on any divergence — the wire may burn,
# the answer may not change. The chaos unit suite then runs under
# -race.
chaos-smoke:
	$(GO) run ./cmd/lssim -sim distphold -horizon 100 \
		-chaos-seed 4 -chaos-drop 0.05 -chaos-reset-at 9,23 -verify
	$(GO) test -race -count=1 ./internal/chaos/

# dist-smoke is the end-to-end check of the pipelined window engine:
# a dense distributed PHOLD run and a sparse one with window skipping
# enabled, each -verify'd bit-identical against the single-process
# reference, then the skipping + pooled-wire suites under -race.
dist-smoke:
	$(GO) run ./cmd/lssim -sim distphold -horizon 100 -verify
	$(GO) run ./cmd/lssim -sim distphold -horizon 400 -jobs 2 \
		-delay-factor 64 -skip-idle -verify
	$(GO) test -race -count=1 \
		-run 'TestSparseSkip|TestSkipCheckpointResumeAcrossGap|TestPooledWireZeroAlloc' \
		./internal/distsim/

# obs-smoke is the end-to-end check of cluster observability: a
# chaos-faulted 4-worker distphold run with full telemetry on —
# -trace writes the merged Perfetto timeline (validated in-process by
# the strict re-parser before it hits disk), -metrics-addr brings up
# the live JSON endpoint (self-probed after the run), -histo prints
# cluster histograms, and -verify pins the run bit-identical to the
# fault-free single-process reference — observability changes no
# output bit. The obs suites then run under -race.
obs-smoke:
	$(GO) run ./cmd/lssim -sim distphold -horizon 100 -workers 4 \
		-chaos-seed 7 -chaos-drop 0.03 -chaos-reset-at 11 \
		-trace $(TRACE_OUT) -metrics-addr 127.0.0.1:0 -histo -verify
	rm -f $(TRACE_OUT)
	$(GO) test -race -count=1 \
		-run 'TestClusterObs|TestStatsIncomplete|TestObsPiggybackZeroAlloc|TestMergeTracks|TestHistogramDelta|TestServeMetrics' \
		./internal/distsim/ ./internal/obs/ ./internal/monitoring/

# balance-smoke is the end-to-end check of adaptive partitioning: a
# skewed distributed PHOLD run (both hot LPs start on worker 0) with
# -rebalance must migrate LPs mid-run yet stay -verify'd bit-identical
# to the single-process reference; the same run then repeats with two
# scripted connection resets, forcing session resume to replay
# migration frames under chaos. The e2e suites cover rollback recovery
# across a migration and checkpoint file resume into the migrated
# layout, under -race.
balance-smoke:
	$(GO) run ./cmd/lssim -sim distphold -horizon 24 \
		-skew-hot 2 -skew 4 -rebalance -rebalance-every 2 -verify
	$(GO) run ./cmd/lssim -sim distphold -horizon 24 \
		-skew-hot 2 -skew 4 -rebalance -rebalance-every 2 \
		-chaos-seed 4 -chaos-reset-at 9,23 -verify
	$(GO) test -race -count=1 \
		-run 'TestRebalanceUnderChaos|TestRebalanceRecoveryAcrossMigration|TestRebalanceFileResumeAcrossMigration' \
		./internal/distsim/

# crash-smoke is the end-to-end proof that the coordinator is no
# longer a single point of failure: a three-process distributed run has
# its coordinator killed -9 mid-flight, a fresh coordinator process
# restarts from the durable control-plane journal and re-adopts the
# parked workers, and -verify pins the finished run bit-identical to a
# single-process replay. The crash-restart, park give-up, and
# heartbeat-vs-partition suites then run under -race (the race target
# also covers them wholesale via ./internal/distsim/...).
crash-smoke:
	bash scripts/crash_smoke.sh
	$(GO) test -race -count=1 \
		-run 'TestCrashRestart|TestWorkerParkGiveUp|TestPartition|TestJournal' \
		./internal/distsim/

# threads-smoke is the end-to-end check of multicore workers: a
# two-worker distributed PHOLD run with a 4-goroutine execution pool
# inside each worker must be -verify'd bit-identical to the
# single-process reference — per-LP sends are buffered thread-locally
# and merged in canonical order at the barrier, so the pool changes no
# output bit. The same holds with skew + live rebalancing + scripted
# connection resets stacked on top. The pool package and the threads
# e2e suites (dense, sparse skip, chaos, checkpoint resume, migration,
# crash-restart, heartbeat liveness) then run under -race.
threads-smoke:
	$(GO) run ./cmd/lssim -sim distphold -horizon 100 -workers 2 -threads 4 -verify
	$(GO) run ./cmd/lssim -sim distphold -horizon 24 -workers 2 -threads 4 \
		-skew-hot 2 -skew 4 -rebalance -rebalance-every 2 \
		-chaos-seed 4 -chaos-reset-at 9 -verify
	$(GO) test -race -count=1 ./internal/pool/
	$(GO) test -race -count=1 -run 'TestThreads' ./internal/distsim/

clean:
	$(GO) clean ./...
