# lsds build/verify entry points. `make tier1` is the gate CI runs.

GO ?= go
TRACE_OUT ?= /tmp/lsds_trace_e5.json

.PHONY: all build test tier1 vet race bench benchjson trace-smoke clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with real concurrency: the parallel
# federation and the engine it drives.
race:
	$(GO) test -race ./internal/parsim/... ./internal/des/...

# tier1 is the acceptance gate: build + full tests, plus vet and the
# race detector over the concurrent packages.
tier1: build test vet race

bench:
	$(GO) test -bench 'E3|PHOLD|Federation|ScheduleExecute' -benchmem -run '^$$' ./...

# Machine-readable hot-path allocation report.
benchjson:
	$(GO) run ./cmd/experiments -benchjson BENCH_1.json

# trace-smoke runs a quick traced E5 federation and validates the
# Chrome trace output: ObserveE5 re-reads the written file through a
# strict JSON parser and fails if it does not parse or is missing
# tracks, so this target is a true end-to-end check of the exporter.
trace-smoke:
	$(GO) run ./cmd/experiments -quick -trace $(TRACE_OUT)
	rm -f $(TRACE_OUT)

clean:
	$(GO) clean ./...
